//! Per-edge decorrelation policies and ghost identities.
//!
//! The model follows the `decor`/`edna` application policies: a table
//! has one *ownership edge* — the attribute holding the id of the user
//! each row belongs to — and a disguise severs that edge by re-owning
//! the row to a **ghost**, a synthetic principal drawn from a reserved
//! id range no real user can occupy. What happens to the rest of the
//! row is declared per attribute ([`EdgeAction`]): linkable
//! quasi-identifiers are usually *redacted* (they are exactly what a
//! re-publication attacker links on), while payload useful in
//! aggregate form can be *retained* under the ghost.
//!
//! Ghost identities are deterministic in `(seed, user, row)`, so a
//! crashed disguise replayed from the journal — or re-planned after a
//! restore — lands on the same ghost ids, which is what makes recovered
//! states bit-identical to clean runs.

use tdf_microdata::synth::{patients, PatientConfig};
use tdf_microdata::{
    AttributeDef, AttributeKind, AttributeRole, Bitmap, Column, Dataset, IntCol, Schema,
};

/// Ghost ids live at and above this base — far outside any realistic
/// user-id population, so `owner >= GHOST_BASE` identifies a ghost row.
pub const GHOST_BASE: u64 = 1 << 48;

/// Name of the ownership-edge attribute in the owned patient table.
pub const OWNER: &str = "owner";

/// What a disguise does to one attribute of an owned row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeAction {
    /// Replace the value with the ghost identity (only meaningful for
    /// the ownership edge — the user→record foreign key).
    Decorrelate,
    /// Suppress the value (a `Missing` cell) until restore.
    Redact,
    /// Keep the value under the ghost — it stays useful in aggregates
    /// but no longer leads back to the user.
    Retain,
}

/// One attribute's disguise rule.
#[derive(Debug, Clone)]
pub struct EdgePolicy {
    /// Attribute name in the table schema.
    pub attr: String,
    /// What the disguise does to it.
    pub action: EdgeAction,
}

/// A table's disguise policy: the ownership edge plus per-attribute
/// actions. Attributes not listed are retained.
#[derive(Debug, Clone)]
pub struct DisguisePolicy {
    /// Attribute holding the owning user's id (decorrelated to a ghost).
    pub owner_attr: String,
    /// Per-attribute actions for the owned rows.
    pub edges: Vec<EdgePolicy>,
    /// Base of the reserved ghost-id range.
    pub ghost_base: u64,
}

impl DisguisePolicy {
    /// The default policy for the owned patient table: the ownership
    /// edge is decorrelated; the linkable quasi-identifiers (height,
    /// weight) and the boolean diagnosis are redacted; blood pressure is
    /// retained under the ghost so population aggregates survive the
    /// unsubscribe.
    pub fn patients_default() -> Self {
        DisguisePolicy {
            owner_attr: OWNER.to_owned(),
            edges: vec![
                EdgePolicy {
                    attr: "height".to_owned(),
                    action: EdgeAction::Redact,
                },
                EdgePolicy {
                    attr: "weight".to_owned(),
                    action: EdgeAction::Redact,
                },
                EdgePolicy {
                    attr: "blood_pressure".to_owned(),
                    action: EdgeAction::Retain,
                },
                EdgePolicy {
                    attr: "aids".to_owned(),
                    action: EdgeAction::Redact,
                },
            ],
            ghost_base: GHOST_BASE,
        }
    }

    /// The action applied to `attr` for a disguised row. The ownership
    /// edge is always decorrelated; unlisted attributes are retained.
    pub fn action_for(&self, attr: &str) -> EdgeAction {
        if attr == self.owner_attr {
            return EdgeAction::Decorrelate;
        }
        self.edges
            .iter()
            .find(|e| e.attr == attr)
            .map_or(EdgeAction::Retain, |e| e.action)
    }

    /// The ghost identity for `(user, row)` under `seed`: deterministic,
    /// inside the reserved range, distinct per row so ghost rows do not
    /// trivially re-correlate with each other either.
    pub fn ghost_id(&self, seed: u64, user: u64, row: u64) -> i64 {
        let mut state = seed ^ user.rotate_left(17) ^ row.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let h = rngkit::splitmix64(&mut state);
        (self.ghost_base.wrapping_add(h & (self.ghost_base - 1))) as i64
    }

    /// True when an owner-cell value is inside the ghost range.
    pub fn is_ghost(&self, owner: i64) -> bool {
        owner >= 0 && (owner as u64) >= self.ghost_base
    }
}

/// The patient schema extended with the ownership edge: an integer
/// identifier column, dropped from releases by `drop_identifiers`.
pub fn owner_schema() -> Schema {
    let mut attrs: Vec<AttributeDef> = tdf_microdata::patients::patient_schema()
        .attributes()
        .to_vec();
    attrs.push(AttributeDef::new(
        OWNER,
        AttributeKind::Integer,
        AttributeRole::Identifier,
    ));
    Schema::new(attrs).expect("owner column name is distinct")
}

/// The synthetic patient population with each row owned by one of
/// `users` user ids (round-robin: row `i` belongs to `1 + i % users`).
/// Built columnar — the patient columns are reused verbatim, only the
/// owner column is synthesised — so the non-owner cells are bit-identical
/// to `patients(cfg)`.
pub fn owned_patients(cfg: &PatientConfig, users: u64) -> Dataset {
    assert!(users >= 1, "need at least one owning user");
    let base = patients(cfg);
    let n = base.num_rows();
    let owners: Vec<i64> = (0..n).map(|i| 1 + (i as u64 % users) as i64).collect();
    let mut columns = base.columns().to_vec();
    columns.push(Column::Int(IntCol::from_parts(owners, Bitmap::zeros(n))));
    Dataset::from_columns(owner_schema(), columns).expect("columns match the owner schema")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdf_microdata::Value;

    #[test]
    fn owned_patients_round_robin_and_bit_identical_payload() {
        let cfg = PatientConfig {
            n: 10,
            seed: 0xD15C,
            ..Default::default()
        };
        let owned = owned_patients(&cfg, 3);
        let plain = patients(&cfg);
        assert_eq!(owned.num_columns(), plain.num_columns() + 1);
        let owner_col = owned.schema().index_of(OWNER).unwrap();
        for i in 0..10 {
            assert_eq!(
                owned.value(i, owner_col),
                Value::Int(1 + (i as i64 % 3)),
                "row {i}"
            );
            for c in 0..plain.num_columns() {
                assert_eq!(owned.value(i, c), plain.value(i, c), "row {i} col {c}");
            }
        }
    }

    #[test]
    fn ghost_ids_are_deterministic_reserved_and_per_row_distinct() {
        let p = DisguisePolicy::patients_default();
        let a = p.ghost_id(7, 3, 0);
        let b = p.ghost_id(7, 3, 0);
        assert_eq!(a, b, "deterministic in (seed, user, row)");
        assert_ne!(p.ghost_id(7, 3, 1), a, "distinct per row");
        assert_ne!(p.ghost_id(8, 3, 0), a, "distinct per seed");
        for row in 0..64 {
            let g = p.ghost_id(0xD15C, 5, row);
            assert!(p.is_ghost(g), "ghost {g} must sit in the reserved range");
        }
        assert!(!p.is_ghost(5));
        assert!(!p.is_ghost(-1));
    }

    #[test]
    fn edge_actions_default_to_retain_and_owner_decorrelates() {
        let p = DisguisePolicy::patients_default();
        assert_eq!(p.action_for(OWNER), EdgeAction::Decorrelate);
        assert_eq!(p.action_for("height"), EdgeAction::Redact);
        assert_eq!(p.action_for("blood_pressure"), EdgeAction::Retain);
        assert_eq!(p.action_for("no_such_attr"), EdgeAction::Retain);
    }
}
