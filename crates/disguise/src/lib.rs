//! # tdf-disguise
//!
//! Crash-atomic *reversible data disguising* — the owner-privacy
//! dimension of the paper made operational as a GDPR-style
//! unsubscribe/resubscribe workload, after the `decor`/`edna` line of
//! work (Wang et al.): when a user unsubscribes, the records they own
//! are not deleted (which would bias every aggregate and break
//! referential structure) but *decorrelated* — re-owned by a synthetic
//! **ghost** principal — while the sensitive payload is redacted or
//! retained per a declarative per-edge policy. Resubscribing restores
//! the original rows bit for bit.
//!
//! The robustness bar is the point of this crate: a disguise that can be
//! half-applied when the process dies is worse than no disguise (it
//! leaks *and* corrupts). Every disguise or restore is therefore a
//! transaction journalled in a checksummed write-ahead log *before* any
//! cell is touched:
//!
//! * [`policy`] — the per-edge decorrelation policy (which attribute is
//!   the ownership edge, what happens to each payload attribute) and the
//!   deterministic ghost-identity derivation;
//! * [`wal`] — the framed, FNV-1a-checksummed journal (`segio` codec
//!   idioms: little-endian framing, tmp+rename rewrites, fail-closed on
//!   torn or corrupt tails);
//! * [`engine`] — the transaction engine: plan → journal (commit) →
//!   apply, with bounded retry at the `disguise.wal_append` /
//!   `disguise.apply` / `disguise.restore` fault sites, idempotent
//!   replay, and recovery that rebuilds a state bit-identical to a
//!   clean run from the base dataset plus the journal.
//!
//! The crash contract, proven by the `crash_matrix` test battery: for
//! any crash injected mid-disguise, mid-restore or mid-recovery, a
//! restart recovers to a state whose row-stream fingerprint equals
//! either the fully-disguised or the fully-original dataset — never a
//! mix — and `restore(disguise(u))` is the identity on the row stream.

pub mod engine;
pub mod policy;
pub mod wal;

#[cfg(test)]
pub(crate) mod testsupport {
    use std::sync::Mutex;

    /// Fault plans are process-global; unit tests that install one must
    /// serialise on this lock so parallel tests never see each other's
    /// plans.
    static PLAN: Mutex<()> = Mutex::new(());

    pub fn with_fault_plan<T>(text: &str, f: impl FnOnce() -> T) -> T {
        let _guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
        faultkit::set_plan(Some(faultkit::FaultPlan::parse(text).unwrap()));
        let out = f();
        faultkit::set_plan(None);
        out
    }

    /// For tests that exercise fault-sited code paths *without* wanting
    /// injection: hold the same lock so a concurrent fault test's plan
    /// cannot leak in.
    pub fn without_faults<T>(f: impl FnOnce() -> T) -> T {
        let _guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
        faultkit::set_plan(None);
        f()
    }
}

pub use engine::{DisguiseEngine, DisguiseOutcome};
pub use policy::{owned_patients, owner_schema, DisguisePolicy, EdgeAction, EdgePolicy};
pub use wal::{CellOp, Journal, OpKind, RecoveryReport, TxnRecord};

use tdf_microdata::{segio, Dataset};

/// Typed failures of the disguise subsystem.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The user already has an active disguise; restore first.
    AlreadyDisguised(u64),
    /// The user has no active disguise to restore.
    NotDisguised(u64),
    /// The user owns no rows — nothing to disguise.
    NoRows(u64),
    /// An injected or real crash at the named fault site exhausted the
    /// bounded retry budget; the engine halts (crash-stop) and must be
    /// re-opened, which runs recovery.
    Crashed(&'static str),
    /// A previous crash poisoned this engine; re-open it to recover.
    Poisoned,
    /// The journal file is corrupt or unreadable (fail closed).
    Wal(String),
    /// The underlying dataset rejected an operation.
    Data(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::AlreadyDisguised(u) => write!(f, "user {u} is already disguised"),
            Error::NotDisguised(u) => write!(f, "user {u} has no active disguise"),
            Error::NoRows(u) => write!(f, "user {u} owns no rows"),
            Error::Crashed(site) => write!(f, "crash at fault site {site}"),
            Error::Poisoned => write!(f, "engine poisoned by an earlier crash; re-open to recover"),
            Error::Wal(m) => write!(f, "journal error: {m}"),
            Error::Data(m) => write!(f, "dataset error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<tdf_microdata::Error> for Error {
    fn from(e: tdf_microdata::Error) -> Self {
        Error::Data(e.to_string())
    }
}

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, Error>;

/// Row-stream fingerprint of a dataset: FNV-1a over the canonical binary
/// segment image (schema, column buffers, missing bitmaps, dictionary
/// order — everything, bit for bit). Two datasets fingerprint equal iff
/// their stored representation is identical; this is the equality the
/// crash-matrix all-or-nothing assertions are stated in.
pub fn fingerprint(data: &Dataset) -> u64 {
    segio::fnv1a(&segio::encode_segment(data))
}
