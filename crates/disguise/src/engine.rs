//! The disguise transaction engine: plan → journal → apply, with
//! bounded retry, idempotent replay, and crash-stop poisoning.
//!
//! Ordering is the whole correctness argument. A transaction is planned
//! against the current state (absolute before/after cell images), then
//! journalled — the durable append *is* the commit point — and only then
//! applied to the in-memory dataset. A crash before the commit leaves an
//! uncommitted tail the next [`DisguiseEngine::open`] truncates (the
//! transaction never happened); a crash after it leaves a committed
//! record that recovery replays to completion (the transaction always
//! happened). Because cell ops carry absolute values, replaying a
//! half-applied transaction from the start is idempotent.
//!
//! Crashes are injected at three sites: `disguise.wal_append` (inside
//! [`crate::wal::Journal::append`]), `disguise.apply` (applying a
//! disguise's cell ops) and `disguise.restore` (applying a restore's).
//! Each apply gets three attempts; when the budget is exhausted the
//! engine *poisons itself* — crash-stop — and every later operation
//! returns [`Error::Poisoned`] until a re-open runs recovery. Recovery
//! replays through the same apply path, so the crash matrix's "crash
//! during recover" leg exercises exactly the code that heals it.

use crate::policy::{DisguisePolicy, EdgeAction};
use crate::wal::{CellOp, Journal, OpKind, RecoveryReport, TxnRecord};
use crate::{Error, Result};
use std::collections::BTreeMap;
use std::path::Path;
use tdf_microdata::{Dataset, Value};

/// What a committed disguise or restore did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisguiseOutcome {
    /// Journal transaction id.
    pub txn_id: u64,
    /// The user acted for.
    pub user: u64,
    /// Rows re-owned or returned.
    pub rows: usize,
    /// Cells rewritten.
    pub cells: usize,
}

/// A per-user reversible disguise/restore engine over one dataset.
pub struct DisguiseEngine {
    data: Dataset,
    policy: DisguisePolicy,
    journal: Journal,
    seed: u64,
    owner_col: usize,
    /// Active disguises: user → the committed disguise record, kept so a
    /// restore can invert it without trusting the (mutated) dataset.
    disguised: BTreeMap<u64, TxnRecord>,
    next_txn: u64,
    poisoned: bool,
}

/// Applies `ops` to `data`, crashing at the midpoint when `site` fires.
/// Absolute after-images make a re-run from op 0 idempotent.
fn try_apply(data: &mut Dataset, ops: &[CellOp], site: &'static str) -> Result<()> {
    let crash_at = ops.len() / 2;
    for (i, op) in ops.iter().enumerate() {
        if i == crash_at && faultkit::fire(site) {
            return Err(Error::Crashed(site));
        }
        data.set_value(op.row as usize, op.col as usize, op.after.clone())?;
    }
    Ok(())
}

/// Bounded retry around [`try_apply`]: three attempts, then crash-stop.
fn apply_ops(data: &mut Dataset, ops: &[CellOp], site: &'static str) -> Result<()> {
    let mut last = Error::Crashed(site);
    for attempt in 0..3 {
        if attempt > 0 {
            obs::count("disguise.apply_retry", 1);
        }
        match try_apply(data, ops, site) {
            Ok(()) => return Ok(()),
            Err(e @ Error::Data(_)) => return Err(e),
            Err(e) => last = e,
        }
    }
    Err(last)
}

fn replay_site(kind: OpKind) -> &'static str {
    match kind {
        OpKind::Disguise => "disguise.apply",
        OpKind::Restore => "disguise.restore",
    }
}

impl DisguiseEngine {
    /// Opens the engine over `base` — the dataset in its *original*
    /// (never-disguised) state — replaying the journal at `wal_path` so
    /// the in-memory state matches what was committed before a crash.
    ///
    /// Recovery replays through the live apply path, fault sites
    /// included; a crash here surfaces as `Err(Crashed(..))` and the
    /// caller re-opens with a fresh `base` (the journal is intact).
    pub fn open(
        wal_path: &Path,
        base: Dataset,
        policy: DisguisePolicy,
        seed: u64,
    ) -> Result<(Self, RecoveryReport)> {
        let _t = obs::span("disguise.open");
        let owner_col = base
            .schema()
            .index_of(&policy.owner_attr)
            .map_err(|e| Error::Data(e.to_string()))?;
        let (journal, records, report) = Journal::open(wal_path)?;
        let mut engine = DisguiseEngine {
            data: base,
            policy,
            journal,
            seed,
            owner_col,
            disguised: BTreeMap::new(),
            next_txn: 0,
            poisoned: false,
        };
        for rec in records {
            apply_ops(&mut engine.data, &rec.ops, replay_site(rec.kind))?;
            obs::count("disguise.replayed_ops", rec.ops.len() as u64);
            engine.next_txn = engine.next_txn.max(rec.txn_id + 1);
            match rec.kind {
                OpKind::Disguise => {
                    engine.disguised.insert(rec.user, rec);
                }
                OpKind::Restore => {
                    engine.disguised.remove(&rec.user);
                }
            }
        }
        obs::count("disguise.recovered_txns", report.entries as u64);
        Ok((engine, report))
    }

    fn ensure_live(&self) -> Result<()> {
        if self.poisoned {
            return Err(Error::Poisoned);
        }
        Ok(())
    }

    /// Rows currently owned by `user` (ghost-owned rows do not match).
    pub fn user_rows(&self, user: u64) -> Vec<usize> {
        let want = Value::Int(user as i64);
        (0..self.data.num_rows())
            .filter(|&i| self.data.value(i, self.owner_col) == want)
            .collect()
    }

    /// Disguises every row `user` owns: the ownership edge is re-pointed
    /// at deterministic ghosts and payload attributes are redacted or
    /// retained per the policy. Atomic across crashes.
    pub fn disguise(&mut self, user: u64) -> Result<DisguiseOutcome> {
        let _t = obs::span("disguise.txn");
        self.ensure_live()?;
        if self.disguised.contains_key(&user) {
            return Err(Error::AlreadyDisguised(user));
        }
        let rows = self.user_rows(user);
        if rows.is_empty() {
            return Err(Error::NoRows(user));
        }
        let attrs = self.data.schema().attributes().to_vec();
        let mut ops = Vec::new();
        for &row in &rows {
            for (col, attr) in attrs.iter().enumerate() {
                let before = self.data.value(row, col);
                let after = match self.policy.action_for(&attr.name) {
                    EdgeAction::Decorrelate => {
                        Value::Int(self.policy.ghost_id(self.seed, user, row as u64))
                    }
                    EdgeAction::Redact => Value::Missing,
                    EdgeAction::Retain => continue,
                };
                if before == after {
                    continue;
                }
                ops.push(CellOp {
                    row: row as u64,
                    col: col as u32,
                    before,
                    after,
                });
            }
        }
        let rec = TxnRecord {
            txn_id: self.next_txn,
            kind: OpKind::Disguise,
            user,
            ops,
        };
        self.commit(rec, rows.len())
    }

    /// Restores every cell of `user`'s active disguise to its original
    /// value — the exact inverse of the journalled disguise record, so
    /// `restore ∘ disguise` is the identity on the row stream.
    pub fn restore(&mut self, user: u64) -> Result<DisguiseOutcome> {
        let _t = obs::span("disguise.txn");
        self.ensure_live()?;
        let Some(disguise_rec) = self.disguised.get(&user) else {
            return Err(Error::NotDisguised(user));
        };
        let rows = disguise_rec
            .ops
            .iter()
            .map(|op| op.row)
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        let ops = disguise_rec
            .ops
            .iter()
            .map(|op| CellOp {
                row: op.row,
                col: op.col,
                before: op.after.clone(),
                after: op.before.clone(),
            })
            .collect();
        let rec = TxnRecord {
            txn_id: self.next_txn,
            kind: OpKind::Restore,
            user,
            ops,
        };
        self.commit(rec, rows)
    }

    /// Journal (the commit point), then apply. Any exhausted fault
    /// budget poisons the engine: its in-memory state may be torn, the
    /// journal is authoritative, and only a re-open may serve again.
    fn commit(&mut self, rec: TxnRecord, rows: usize) -> Result<DisguiseOutcome> {
        if let Err(e) = self.journal.append(&rec) {
            if matches!(e, Error::Crashed(_)) {
                self.poisoned = true;
            }
            return Err(e);
        }
        if let Err(e) = apply_ops(&mut self.data, &rec.ops, replay_site(rec.kind)) {
            self.poisoned = true;
            return Err(e);
        }
        self.next_txn = rec.txn_id + 1;
        let outcome = DisguiseOutcome {
            txn_id: rec.txn_id,
            user: rec.user,
            rows,
            cells: rec.ops.len(),
        };
        match rec.kind {
            OpKind::Disguise => {
                obs::count("disguise.txns", 1);
                obs::count("disguise.rows", rows as u64);
                self.disguised.insert(rec.user, rec);
            }
            OpKind::Restore => {
                obs::count("disguise.restores", 1);
                self.disguised.remove(&rec.user);
            }
        }
        Ok(outcome)
    }

    /// The current dataset (owner column included).
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// The release view: identifiers (the ownership edge) dropped, as a
    /// publication would ship it.
    pub fn release(&self) -> Dataset {
        self.data.drop_identifiers()
    }

    /// Row-stream fingerprint of the current state.
    pub fn fingerprint(&self) -> u64 {
        crate::fingerprint(&self.data)
    }

    /// Whether `user` has an active disguise.
    pub fn is_disguised(&self, user: u64) -> bool {
        self.disguised.contains_key(&user)
    }

    /// Users with an active disguise, ascending.
    pub fn disguised_users(&self) -> Vec<u64> {
        self.disguised.keys().copied().collect()
    }

    /// True after a crash-stop; re-open to recover.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// The journal path (for re-opening after a crash-stop).
    pub fn wal_path(&self) -> &Path {
        self.journal.path()
    }

    /// The engine's decorrelation policy.
    pub fn policy(&self) -> &DisguisePolicy {
        &self.policy
    }
}

impl std::fmt::Debug for DisguiseEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DisguiseEngine")
            .field("rows", &self.data.num_rows())
            .field("disguised", &self.disguised.len())
            .field("next_txn", &self.next_txn)
            .field("poisoned", &self.poisoned)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{owned_patients, DisguisePolicy};
    use crate::testsupport::{with_fault_plan, without_faults};
    use std::path::PathBuf;
    use tdf_microdata::synth::PatientConfig;

    fn wal(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tdf_engine_{tag}_{}.wal", std::process::id()))
    }

    fn base() -> Dataset {
        owned_patients(
            &PatientConfig {
                n: 60,
                seed: 0xD15C,
                ..Default::default()
            },
            6,
        )
    }

    fn open(path: &Path) -> DisguiseEngine {
        DisguiseEngine::open(path, base(), DisguisePolicy::patients_default(), 0xD15C)
            .unwrap()
            .0
    }

    #[test]
    fn restore_after_disguise_is_identity_on_the_fingerprint() {
        let path = wal("identity");
        let _ = std::fs::remove_file(&path);
        without_faults(|| {
            let mut e = open(&path);
            let fp0 = e.fingerprint();
            let out = e.disguise(3).unwrap();
            assert_eq!(out.rows, 10, "60 rows round-robin over 6 users");
            assert!(out.cells >= out.rows, "at least the ownership edge per row");
            assert_ne!(e.fingerprint(), fp0, "disguise changes the stream");
            assert!(e.is_disguised(3));
            assert!(e.user_rows(3).is_empty(), "ghosts own the rows now");
            let back = e.restore(3).unwrap();
            assert_eq!(back.rows, 10);
            assert_eq!(e.fingerprint(), fp0, "restore ∘ disguise ≡ identity");
            assert!(!e.is_disguised(3));
        });
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn typed_refusals_for_double_disguise_and_unknown_users() {
        let path = wal("refusals");
        let _ = std::fs::remove_file(&path);
        without_faults(|| {
            let mut e = open(&path);
            assert_eq!(e.restore(2), Err(Error::NotDisguised(2)));
            assert_eq!(e.disguise(999), Err(Error::NoRows(999)));
            e.disguise(2).unwrap();
            assert_eq!(e.disguise(2), Err(Error::AlreadyDisguised(2)));
        });
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reopen_resumes_committed_state_and_txn_ids() {
        let path = wal("reopen");
        let _ = std::fs::remove_file(&path);
        without_faults(|| {
            let mut e = open(&path);
            e.disguise(1).unwrap();
            e.disguise(4).unwrap();
            e.restore(1).unwrap();
            let fp = e.fingerprint();
            drop(e);
            let (mut e2, report) =
                DisguiseEngine::open(&path, base(), DisguisePolicy::patients_default(), 0xD15C)
                    .unwrap();
            assert_eq!(report.entries, 3);
            assert_eq!(e2.fingerprint(), fp, "replay lands on the committed state");
            assert_eq!(e2.disguised_users(), vec![4]);
            let out = e2.disguise(1).unwrap();
            assert_eq!(out.txn_id, 3, "txn ids continue past the journal");
        });
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn apply_crash_poisons_then_recovery_completes_the_committed_txn() {
        let path = wal("poison");
        let _ = std::fs::remove_file(&path);
        let disguised_fp = without_faults(|| {
            let mut probe = open(&path);
            probe.disguise(5).unwrap();
            let fp = probe.fingerprint();
            std::fs::remove_file(&path).unwrap();
            fp
        });
        with_fault_plan("disguise.apply=0", || {
            let mut e = open(&path);
            assert_eq!(e.disguise(5), Err(Error::Crashed("disguise.apply")));
            assert!(e.is_poisoned());
            assert_eq!(e.disguise(1), Err(Error::Poisoned), "crash-stop holds");
            assert_eq!(e.restore(5), Err(Error::Poisoned));
        });
        without_faults(|| {
            // The WAL committed before the apply crashed: recovery must
            // finish the transaction, bit-identical to a clean disguise.
            let e = open(&path);
            assert_eq!(e.fingerprint(), disguised_fp);
            assert!(e.is_disguised(5));
        });
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bounded_retry_absorbs_single_faults_invisibly() {
        let path = wal("retry");
        let _ = std::fs::remove_file(&path);
        let clean_fp = without_faults(|| {
            let mut probe = open(&path);
            probe.disguise(2).unwrap();
            let fp = probe.fingerprint();
            std::fs::remove_file(&path).unwrap();
            fp
        });
        with_fault_plan("disguise.wal_append=1,disguise.apply=1", || {
            let mut e = open(&path);
            e.disguise(2).unwrap();
            assert_eq!(e.fingerprint(), clean_fp, "retried run ≡ clean run");
            assert!(!e.is_poisoned());
        });
        let _ = std::fs::remove_file(&path);
    }
}
