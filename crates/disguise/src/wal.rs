//! The disguise journal: a checksummed write-ahead log of disguise and
//! restore transactions.
//!
//! The format reuses the `segio` codec idioms — little-endian framing,
//! a 64-bit FNV-1a checksum verified before any decoding, tmp+rename
//! rewrites, fail-closed on anything torn or corrupt:
//!
//! ```text
//! magic     8  b"TDFWAL1\0"
//! entry*:
//!   len     4  u32, byte length of body
//!   body       txn_id u64 | kind u8 (0 disguise / 1 restore) | user u64
//!              | nops u32 | op* | commit u8 (0xC7)
//!     op:      row u64 | col u32 | before value | after value
//!     value:   tag u8 (0 Int i64 / 1 Float f64-bits / 2 Bool u8
//!              / 3 Str u32+bytes / 4 Missing)
//!   checksum 8 FNV-1a over body
//! ```
//!
//! A transaction is journalled as **one** frame whose commit marker and
//! checksum land with the same `write_all`+`sync_all`, so the classic
//! WAL dichotomy holds per entry: a frame that parses and checksums is
//! committed in full; anything else is an uncommitted tail. [`recover`]
//! keeps the longest clean prefix and truncates the tail (tmp+rename, so
//! a crash *during recovery* leaves either the old file or the repaired
//! one, never a hybrid); [`read_all`] is the strict variant that turns
//! any damage into a typed error.
//!
//! [`Journal::append`] is where the `disguise.wal_append` fault site
//! lives: an injected crash writes half the frame and errors. Retries
//! first truncate the file back to the committed length — re-appending
//! over a torn tail without that repair would bury garbage mid-file and
//! silently orphan every later entry. The final failed attempt leaves
//! the torn tail in place, exactly as a real crash would.

use crate::{Error, Result};
use std::fs;
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use tdf_microdata::segio::fnv1a;
use tdf_microdata::Value;

const MAGIC: &[u8; 8] = b"TDFWAL1\0";
const COMMIT: u8 = 0xC7;

/// Transaction direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Forward: original cells → ghost/redacted cells.
    Disguise,
    /// Inverse: disguised cells → original cells.
    Restore,
}

/// One cell mutation: absolute before/after images, so replay is
/// idempotent (re-applying an `after` value is a no-op).
#[derive(Debug, Clone, PartialEq)]
pub struct CellOp {
    /// Row index in the base dataset.
    pub row: u64,
    /// Column index in the base schema.
    pub col: u32,
    /// Cell value before the transaction.
    pub before: Value,
    /// Cell value after the transaction.
    pub after: Value,
}

/// A whole disguise or restore transaction, journalled as one frame.
#[derive(Debug, Clone, PartialEq)]
pub struct TxnRecord {
    /// Monotonic transaction id.
    pub txn_id: u64,
    /// Disguise or restore.
    pub kind: OpKind,
    /// The user the transaction is for.
    pub user: u64,
    /// Every cell the transaction touches.
    pub ops: Vec<CellOp>,
}

/// What [`Journal::open`] found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Committed transactions recovered from the journal.
    pub entries: usize,
    /// Torn/uncommitted tail bytes truncated away.
    pub truncated_bytes: u64,
    /// True when the file had to be rewritten (torn tail or short header).
    pub repaired: bool,
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(i) => {
            out.push(0);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(1);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Bool(b) => {
            out.push(2);
            out.push(*b as u8);
        }
        Value::Str(s) => {
            out.push(3);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Missing => out.push(4),
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(Error::Wal("journal entry truncated".into()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn value(&mut self) -> Result<Value> {
        Ok(match self.u8()? {
            0 => Value::Int(self.u64()? as i64),
            1 => Value::Float(f64::from_bits(self.u64()?)),
            2 => Value::Bool(self.u8()? != 0),
            3 => {
                let len = self.u32()? as usize;
                Value::Str(
                    String::from_utf8(self.take(len)?.to_vec())
                        .map_err(|_| Error::Wal("journal string not UTF-8".into()))?,
                )
            }
            4 => Value::Missing,
            t => return Err(Error::Wal(format!("unknown value tag {t}"))),
        })
    }
}

impl TxnRecord {
    fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.ops.len() * 24);
        out.extend_from_slice(&self.txn_id.to_le_bytes());
        out.push(match self.kind {
            OpKind::Disguise => 0,
            OpKind::Restore => 1,
        });
        out.extend_from_slice(&self.user.to_le_bytes());
        out.extend_from_slice(&(self.ops.len() as u32).to_le_bytes());
        for op in &self.ops {
            out.extend_from_slice(&op.row.to_le_bytes());
            out.extend_from_slice(&op.col.to_le_bytes());
            put_value(&mut out, &op.before);
            put_value(&mut out, &op.after);
        }
        out.push(COMMIT);
        out
    }

    /// The full on-disk frame: length prefix, body, checksum trailer.
    pub fn encode_frame(&self) -> Vec<u8> {
        let body = self.encode_body();
        let mut out = Vec::with_capacity(body.len() + 12);
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        out.extend_from_slice(&fnv1a(&body).to_le_bytes());
        out
    }

    fn decode_body(body: &[u8]) -> Result<TxnRecord> {
        let mut cur = Cursor {
            bytes: body,
            pos: 0,
        };
        let txn_id = cur.u64()?;
        let kind = match cur.u8()? {
            0 => OpKind::Disguise,
            1 => OpKind::Restore,
            t => return Err(Error::Wal(format!("unknown txn kind {t}"))),
        };
        let user = cur.u64()?;
        let nops = cur.u32()? as usize;
        let mut ops = Vec::with_capacity(nops.min(1 << 16));
        for _ in 0..nops {
            let row = cur.u64()?;
            let col = cur.u32()?;
            let before = cur.value()?;
            let after = cur.value()?;
            ops.push(CellOp {
                row,
                col,
                before,
                after,
            });
        }
        if cur.u8()? != COMMIT {
            return Err(Error::Wal("missing commit marker".into()));
        }
        if cur.pos != body.len() {
            return Err(Error::Wal("trailing bytes after commit marker".into()));
        }
        Ok(TxnRecord {
            txn_id,
            kind,
            user,
            ops,
        })
    }
}

/// Parses the byte stream after the magic. Returns the records of the
/// longest clean prefix and the byte offset (relative to the start of
/// `bytes`) where that prefix ends; `clean` is false when damaged bytes
/// follow the prefix.
fn parse_entries(bytes: &[u8]) -> (Vec<TxnRecord>, usize, bool) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let rem = &bytes[pos..];
        if rem.len() < 4 {
            return (records, pos, false);
        }
        let len = u32::from_le_bytes(rem[..4].try_into().unwrap()) as usize;
        if rem.len() < 4 + len + 8 {
            return (records, pos, false);
        }
        let body = &rem[4..4 + len];
        let stored = u64::from_le_bytes(rem[4 + len..4 + len + 8].try_into().unwrap());
        if fnv1a(body) != stored {
            return (records, pos, false);
        }
        match TxnRecord::decode_body(body) {
            Ok(rec) => records.push(rec),
            Err(_) => return (records, pos, false),
        }
        pos += 4 + len + 8;
    }
    (records, pos, true)
}

fn io_wal(ctx: &str, path: &Path, e: std::io::Error) -> Error {
    Error::Wal(format!("{ctx} {}: {e}", path.display()))
}

/// Strict read: every byte of the journal must parse and checksum, or
/// the whole read fails with a typed error. This is the auditor's view;
/// recovery (which tolerates a torn tail) is [`Journal::open`].
pub fn read_all(path: &Path) -> Result<Vec<TxnRecord>> {
    let bytes = fs::read(path).map_err(|e| io_wal("read", path, e))?;
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(Error::Wal(format!(
            "bad journal magic in {}",
            path.display()
        )));
    }
    let (records, _, clean) = parse_entries(&bytes[MAGIC.len()..]);
    if !clean {
        return Err(Error::Wal(format!(
            "journal {} has a torn or corrupt tail",
            path.display()
        )));
    }
    Ok(records)
}

/// The open journal: an append handle plus the committed length.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: fs::File,
    committed_len: u64,
}

impl Journal {
    /// Opens (or creates) the journal at `path`, recovering the committed
    /// prefix. A file shorter than the magic is re-initialised (a crash
    /// during creation); a file with the wrong magic is a typed error —
    /// it is not ours to destroy. A torn or corrupt tail is truncated
    /// away via tmp+rename and reported.
    pub fn open(path: &Path) -> Result<(Journal, Vec<TxnRecord>, RecoveryReport)> {
        // A crash during a previous recovery rewrite may have left a tmp.
        let tmp = path.with_extension("tmp");
        let _ = fs::remove_file(&tmp);

        let bytes = match fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io_wal("read", path, e)),
        };
        let mut report = RecoveryReport::default();
        let records;
        if bytes.len() < MAGIC.len() {
            // Nothing committed could fit before the magic was durable:
            // reinitialise from scratch.
            if !bytes.is_empty() {
                report.repaired = true;
                report.truncated_bytes = bytes.len() as u64;
            }
            fs::write(path, MAGIC).map_err(|e| io_wal("init", path, e))?;
            records = Vec::new();
        } else if &bytes[..MAGIC.len()] != MAGIC {
            return Err(Error::Wal(format!(
                "bad journal magic in {}",
                path.display()
            )));
        } else {
            let (recs, end, clean) = parse_entries(&bytes[MAGIC.len()..]);
            if !clean {
                let keep = MAGIC.len() + end;
                report.repaired = true;
                report.truncated_bytes = (bytes.len() - keep) as u64;
                let mut f = fs::File::create(&tmp).map_err(|e| io_wal("create", &tmp, e))?;
                f.write_all(&bytes[..keep])
                    .map_err(|e| io_wal("write", &tmp, e))?;
                f.sync_all().map_err(|e| io_wal("sync", &tmp, e))?;
                drop(f);
                fs::rename(&tmp, path).map_err(|e| io_wal("rename", &tmp, e))?;
                obs::count("disguise.wal_truncated_bytes", report.truncated_bytes);
            }
            records = recs;
        }
        report.entries = records.len();
        obs::count("disguise.wal_recovered", records.len() as u64);

        let mut file = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| io_wal("open", path, e))?;
        let committed_len = file
            .seek(SeekFrom::End(0))
            .map_err(|e| io_wal("seek", path, e))?;
        Ok((
            Journal {
                path: path.to_path_buf(),
                file,
                committed_len,
            },
            records,
            report,
        ))
    }

    /// Path of the journal file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes of committed journal (magic + committed frames).
    pub fn committed_len(&self) -> u64 {
        self.committed_len
    }

    /// Durably appends one transaction frame. The commit marker and
    /// checksum ship in the same write, so the entry is committed iff
    /// the whole frame lands.
    ///
    /// The `disguise.wal_append` fault site crashes an attempt after
    /// half the frame: each retry first truncates back to the committed
    /// length (never re-append over a torn tail), and the final failed
    /// attempt leaves the torn tail on disk as the crash image.
    pub fn append(&mut self, rec: &TxnRecord) -> Result<()> {
        let frame = rec.encode_frame();
        let start = self.committed_len;
        for attempt in 0..3 {
            if attempt > 0 {
                obs::count("disguise.wal_retry", 1);
                self.file
                    .set_len(start)
                    .map_err(|e| io_wal("truncate", &self.path, e))?;
            }
            self.file
                .seek(SeekFrom::Start(start))
                .map_err(|e| io_wal("seek", &self.path, e))?;
            if faultkit::fire("disguise.wal_append") {
                let _ = self.file.write_all(&frame[..frame.len() / 2]);
                let _ = self.file.sync_all();
                continue;
            }
            self.file
                .write_all(&frame)
                .map_err(|e| io_wal("append", &self.path, e))?;
            self.file
                .sync_all()
                .map_err(|e| io_wal("sync", &self.path, e))?;
            self.committed_len = start + frame.len() as u64;
            obs::count("disguise.wal_entries", 1);
            obs::count("disguise.wal_bytes", frame.len() as u64);
            return Ok(());
        }
        Err(Error::Crashed("disguise.wal_append"))
    }

    /// Re-reads the whole journal strictly (committed entries only — a
    /// torn tail left by the final failed append attempt is an error
    /// here, by design).
    pub fn read_back(&mut self) -> Result<Vec<TxnRecord>> {
        self.file
            .seek(SeekFrom::Start(0))
            .map_err(|e| io_wal("seek", &self.path, e))?;
        let mut bytes = Vec::new();
        self.file
            .read_to_end(&mut bytes)
            .map_err(|e| io_wal("read", &self.path, e))?;
        if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            return Err(Error::Wal("bad journal magic".into()));
        }
        let (records, _, clean) = parse_entries(&bytes[MAGIC.len()..]);
        if !clean {
            return Err(Error::Wal("journal has a torn or corrupt tail".into()));
        }
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tdf_wal_{tag}_{}.wal", std::process::id()))
    }

    fn sample_rec(txn_id: u64) -> TxnRecord {
        TxnRecord {
            txn_id,
            kind: if txn_id % 2 == 0 {
                OpKind::Disguise
            } else {
                OpKind::Restore
            },
            user: 40 + txn_id,
            ops: vec![
                CellOp {
                    row: 3,
                    col: 0,
                    before: Value::Float(171.5),
                    after: Value::Missing,
                },
                CellOp {
                    row: 3,
                    col: 4,
                    before: Value::Int(7),
                    after: Value::Int((1i64 << 48) + 99),
                },
                CellOp {
                    row: 9,
                    col: 3,
                    before: Value::Bool(true),
                    after: Value::Str("ghost".into()),
                },
            ],
        }
    }

    #[test]
    fn append_then_reopen_round_trips() {
        let path = tmp_path("roundtrip");
        let _ = fs::remove_file(&path);
        let (mut j, recs, report) = Journal::open(&path).unwrap();
        assert!(recs.is_empty());
        assert!(!report.repaired);
        crate::testsupport::without_faults(|| {
            j.append(&sample_rec(0)).unwrap();
            j.append(&sample_rec(1)).unwrap();
        });
        assert_eq!(j.read_back().unwrap().len(), 2);
        drop(j);
        let (_, recs, report) = Journal::open(&path).unwrap();
        assert_eq!(recs, vec![sample_rec(0), sample_rec(1)]);
        assert_eq!(report.entries, 2);
        assert!(!report.repaired);
        let strict = read_all(&path).unwrap();
        assert_eq!(strict.len(), 2);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_to_the_committed_prefix() {
        let path = tmp_path("torn");
        let _ = fs::remove_file(&path);
        let (mut j, _, _) = Journal::open(&path).unwrap();
        crate::testsupport::without_faults(|| j.append(&sample_rec(0)).unwrap());
        drop(j);
        // A crash mid-append: half of the next frame lands.
        let frame = sample_rec(1).encode_frame();
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(&frame[..frame.len() / 2]);
        fs::write(&path, &bytes).unwrap();
        assert!(read_all(&path).is_err(), "strict read fails closed");
        let (_, recs, report) = Journal::open(&path).unwrap();
        assert_eq!(recs, vec![sample_rec(0)], "committed prefix survives");
        assert!(report.repaired);
        assert_eq!(report.truncated_bytes, (frame.len() / 2) as u64);
        // After repair the strict read agrees.
        assert_eq!(read_all(&path).unwrap(), vec![sample_rec(0)]);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn short_header_reinitialises_and_foreign_magic_fails_closed() {
        let path = tmp_path("header");
        fs::write(&path, b"TDF").unwrap();
        let (_, recs, report) = Journal::open(&path).unwrap();
        assert!(recs.is_empty());
        assert!(report.repaired);
        fs::write(&path, b"NOTAWAL0rest").unwrap();
        assert!(matches!(Journal::open(&path), Err(Error::Wal(_))));
        assert!(matches!(read_all(&path), Err(Error::Wal(_))));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn injected_append_crash_retries_then_fails_closed() {
        let path = tmp_path("fault");
        let _ = fs::remove_file(&path);
        let (mut j, _, _) = Journal::open(&path).unwrap();
        // Budget 1: the first attempt tears, the retry commits.
        crate::testsupport::with_fault_plan("disguise.wal_append=1", || {
            j.append(&sample_rec(0)).unwrap();
        });
        // Unbounded: all three attempts tear; the torn tail stays on disk.
        crate::testsupport::with_fault_plan("disguise.wal_append=0", || {
            assert_eq!(
                j.append(&sample_rec(1)),
                Err(Error::Crashed("disguise.wal_append"))
            );
        });
        drop(j);
        let (mut j, recs, report) = Journal::open(&path).unwrap();
        assert_eq!(recs, vec![sample_rec(0)], "only the committed entry");
        assert!(report.repaired, "the torn tail was truncated");
        // The journal keeps working after recovery.
        crate::testsupport::without_faults(|| j.append(&sample_rec(1)).unwrap());
        assert_eq!(j.read_back().unwrap().len(), 2);
        let _ = fs::remove_file(&path);
    }
}
