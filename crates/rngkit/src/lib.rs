//! In-tree deterministic randomness.
//!
//! The workspace builds hermetically — no crates.io — so the external
//! `rand` crate is replaced by this minimal, auditable PRNG kit. It
//! provides exactly the API slice the repository uses:
//!
//! - [`StdRng`]: a splitmix64-seeded **xoshiro256++** generator
//!   (Blackman & Vigna), constructed via
//!   [`SeedableRng::seed_from_u64`];
//! - the [`Rng`] trait with `gen`, `gen_range`, `gen_bool`,
//!   `fill_bytes`;
//! - [`seq::SliceRandom`] with `choose`, `choose_weighted`, `shuffle`.
//!
//! Every generator here is deterministic given its seed; nothing reads
//! OS entropy. That is a feature: all tables and figures of the paper
//! reproduction regenerate bit-identically (see EXPERIMENTS.md), and the
//! audit surface is ~300 lines of plain Rust.

pub mod rngs;
pub mod seq;

pub use rngs::StdRng;

/// Splitmix64 step — used to expand a 64-bit seed into xoshiro state.
/// (Vigna's recommended seeding procedure.)
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Construction of a generator from a 64-bit seed.
///
/// Mirrors the `rand::SeedableRng::seed_from_u64` entry point so that
/// swapping the external crate for this one is a one-line import change.
pub trait SeedableRng: Sized {
    /// Builds a deterministic generator from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's raw 64-bit
/// output (the `rand` `Standard` distribution, specialised to what the
/// workspace needs).
pub trait Sample: Sized {
    /// Draws one uniform value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_sample_uint {
    ($($t:ty),*) => {$(
        impl Sample for $t {
            #[inline]
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_sample_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl Sample for $t {
            #[inline]
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_sample_int!(i8, i16, i32, i64, isize);

impl Sample for u128 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Sample for i128 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Sample for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $u).wrapping_sub(lo as $u).wrapping_add(1);
                if span == 0 {
                    // Full domain.
                    return <$t as Sample>::sample(rng);
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
impl_range_int!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
                i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64);

impl SampleRange<u128> for core::ops::Range<u128> {
    #[inline]
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> u128 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + uniform_below_u128(rng, self.end - self.start)
    }
}

impl SampleRange<i128> for core::ops::Range<i128> {
    #[inline]
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> i128 {
        assert!(self.start < self.end, "gen_range: empty range");
        let span = (self.end as u128).wrapping_sub(self.start as u128);
        self.start
            .wrapping_add(uniform_below_u128(rng, span) as i128)
    }
}

impl SampleRange<u128> for core::ops::RangeInclusive<u128> {
    #[inline]
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> u128 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        let span = hi.wrapping_sub(lo).wrapping_add(1);
        if span == 0 {
            return u128::sample(rng);
        }
        lo.wrapping_add(uniform_below_u128(rng, span))
    }
}

impl SampleRange<i128> for core::ops::RangeInclusive<i128> {
    #[inline]
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> i128 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
        if span == 0 {
            return i128::sample(rng);
        }
        lo.wrapping_add(uniform_below_u128(rng, span) as i128)
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Unbiased uniform draw from `[0, span)` (`span == 0` means the full
/// 64-bit domain) via bitmask rejection.
#[inline]
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let mask = u64::MAX >> (span - 1).leading_zeros();
    loop {
        let v = rng.next_u64() & mask;
        if v < span {
            return v;
        }
    }
}

#[inline]
fn uniform_below_u128<R: Rng + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return u128::sample(rng) & (span - 1);
    }
    let mask = u128::MAX >> (span - 1).leading_zeros();
    loop {
        let v = u128::sample(rng) & mask;
        if v < span {
            return v;
        }
    }
}

/// The generator interface (the `rand::Rng` slice the workspace uses).
pub trait Rng {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// One uniform value of type `T` (`f64` is uniform in `[0, 1)`).
    #[inline]
    fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// One uniform value from `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0,1]");
        self.gen::<f64>() < p
    }

    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = StdRng::seed_from_u64(43).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn xoshiro_reference_vector() {
        // xoshiro256++ with state {1,2,3,4}: first outputs from the
        // reference C implementation (Blackman & Vigna).
        let mut r = StdRng::from_state([1, 2, 3, 4]);
        assert_eq!(r.next_u64(), 41943041);
        assert_eq!(r.next_u64(), 58720359);
        assert_eq!(r.next_u64(), 3588806011781223);
    }

    #[test]
    fn unit_f64_is_in_range_and_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..10_000).map(|_| r.gen::<f64>()).collect();
        assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..2000 {
            let v = r.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
            let x = r.gen_range(0..3usize);
            assert!(x < 3);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn full_domain_inclusive_range_works() {
        let mut r = StdRng::seed_from_u64(13);
        // Must not hang or panic on the degenerate full-span case.
        let _ = r.gen_range(0..=u64::MAX);
        let _ = r.gen_range(i64::MIN..=i64::MAX);
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = StdRng::seed_from_u64(17);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut r = StdRng::seed_from_u64(19);
        let mut buf = [0u8; 37];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn u128_sampling_uses_both_halves() {
        let mut r = StdRng::seed_from_u64(23);
        let v: u128 = r.gen();
        assert!(
            v >> 64 != 0 || {
                let w: u128 = r.gen();
                w >> 64 != 0
            }
        );
    }
}
