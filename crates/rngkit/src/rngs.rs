//! Concrete generators.

use crate::{splitmix64, Rng, SeedableRng};

/// The workspace's standard deterministic generator: **xoshiro256++**.
///
/// 256 bits of state, period 2^256 − 1, passes BigCrush; seeded from a
/// single `u64` through splitmix64 so that nearby seeds yield unrelated
/// streams. The name mirrors `rand::rngs::StdRng` to keep call-sites
/// unchanged, but unlike that type the algorithm here is frozen: the
/// stream for a given seed is part of the repository's reproducibility
/// contract (EXPERIMENTS.md).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Builds a generator directly from raw state (test vectors; the
    /// all-zero state is forbidden).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(
            s.iter().any(|&w| w != 0),
            "xoshiro256++ state must be non-zero"
        );
        Self { s }
    }

    #[inline]
    fn step(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // splitmix64 output is never all-zero across four draws for any
        // seed, so `from_state`'s invariant holds.
        Self::from_state(s)
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }
}
