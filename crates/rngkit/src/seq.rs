//! Sequence helpers (the `rand::seq` slice the workspace uses).

use crate::Rng;

/// Error returned by [`SliceRandom::choose_weighted`] when the weights
/// are unusable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WeightError {
    /// The slice was empty.
    Empty,
    /// All weights were zero, or a weight was negative / non-finite.
    InvalidWeight,
}

impl core::fmt::Display for WeightError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WeightError::Empty => write!(f, "cannot choose from an empty slice"),
            WeightError::InvalidWeight => {
                write!(f, "weights must be finite, non-negative, not all zero")
            }
        }
    }
}

impl std::error::Error for WeightError {}

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// A uniformly random element, or `None` when empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// An element drawn with probability proportional to `weight(item)`.
    fn choose_weighted<R, F>(&self, rng: &mut R, weight: F) -> Result<&Self::Item, WeightError>
    where
        R: Rng + ?Sized,
        F: Fn(&Self::Item) -> f64;

    /// In-place Fisher–Yates shuffle.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn choose_weighted<R, F>(&self, rng: &mut R, weight: F) -> Result<&T, WeightError>
    where
        R: Rng + ?Sized,
        F: Fn(&T) -> f64,
    {
        if self.is_empty() {
            return Err(WeightError::Empty);
        }
        let weights: Vec<f64> = self.iter().map(&weight).collect();
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(WeightError::InvalidWeight);
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(WeightError::InvalidWeight);
        }
        let mut t = rng.gen::<f64>() * total;
        for (item, w) in self.iter().zip(&weights) {
            t -= w;
            if t <= 0.0 {
                return Ok(item);
            }
        }
        // Floating-point slack: fall back to the last positive weight.
        Ok(self
            .iter()
            .zip(&weights)
            .rev()
            .find(|(_, &w)| w > 0.0)
            .map(|(item, _)| item)
            .expect("total > 0 implies a positive weight"))
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeedableRng, StdRng};

    #[test]
    fn choose_is_none_on_empty_and_covers_all() {
        let mut r = StdRng::seed_from_u64(1);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
        let items = [1u32, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[(*items.choose(&mut r).unwrap() - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn choose_weighted_respects_weights() {
        let mut r = StdRng::seed_from_u64(2);
        let items = ["heavy", "light"];
        let n = 10_000;
        let heavy = (0..n)
            .filter(|_| {
                *items
                    .choose_weighted(&mut r, |s| if *s == "heavy" { 9.0 } else { 1.0 })
                    .unwrap()
                    == "heavy"
            })
            .count();
        let rate = heavy as f64 / n as f64;
        assert!((rate - 0.9).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn choose_weighted_rejects_bad_weights() {
        let mut r = StdRng::seed_from_u64(3);
        let empty: [u32; 0] = [];
        assert_eq!(
            empty.choose_weighted(&mut r, |_| 1.0),
            Err(WeightError::Empty)
        );
        let items = [1u32, 2];
        assert_eq!(
            items.choose_weighted(&mut r, |_| 0.0),
            Err(WeightError::InvalidWeight)
        );
        assert_eq!(
            items.choose_weighted(&mut r, |_| -1.0),
            Err(WeightError::InvalidWeight)
        );
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle should move elements"
        );
    }
}
