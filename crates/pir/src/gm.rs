//! Goldwasser–Micali encryption (quadratic residuosity).
//!
//! Semantically secure bit encryption with an XOR homomorphism:
//! `E(a) · E(b) mod N` encrypts `a ⊕ b`. That homomorphism is what turns
//! a database scan into single-server computational PIR ([`crate::cpir`]).

use rngkit::Rng;
use tdf_mathkit::modular::{jacobi, mul_mod, random_unit};
use tdf_mathkit::primes::random_blum_prime;
use tdf_mathkit::BigUint;

/// Public key: the modulus `N = p·q` and a fixed pseudo-square `y`
/// (Jacobi symbol +1, but a non-residue).
#[derive(Debug, Clone)]
pub struct PublicKey {
    /// Modulus.
    pub n: BigUint,
    /// Pseudo-square used to encode 1-bits.
    pub y: BigUint,
}

/// Private key: the factorisation of `N`.
#[derive(Debug, Clone)]
pub struct PrivateKey {
    p: BigUint,
    #[allow(dead_code)]
    q: BigUint,
}

/// Generates a GM key pair with `bits`-bit primes (modulus ≈ 2·bits).
pub fn keygen<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> (PublicKey, PrivateKey) {
    let p = random_blum_prime(rng, bits);
    let q = loop {
        let q = random_blum_prime(rng, bits);
        if q != p {
            break q;
        }
    };
    let n = p.mul_ref(&q);
    // For Blum primes, −1 is a non-residue mod p and mod q, so N−1 has
    // Jacobi symbol (+1)(+1)... careful: jacobi(−1, p) = (−1)^((p−1)/2) = −1
    // for p ≡ 3 mod 4; hence jacobi(−1, N) = (−1)(−1) = +1 while −1 is a
    // non-residue mod both factors: a canonical pseudo-square.
    let y = n.sub_ref(&BigUint::one());
    debug_assert_eq!(jacobi(&y, &n), 1);
    (PublicKey { n, y }, PrivateKey { p, q })
}

/// Encrypts one bit: `E(b) = y^b · r² mod N` for random unit `r`.
pub fn encrypt<R: Rng + ?Sized>(pk: &PublicKey, bit: bool, rng: &mut R) -> BigUint {
    let r = random_unit(rng, &pk.n);
    let r2 = mul_mod(&r, &r, &pk.n);
    if bit {
        mul_mod(&pk.y, &r2, &pk.n)
    } else {
        r2
    }
}

/// Decrypts: the ciphertext encodes 1 iff it is a non-residue mod `p`
/// (equivalently, its Legendre symbol mod `p` is −1).
pub fn decrypt(sk: &PrivateKey, c: &BigUint) -> bool {
    jacobi(c, &sk.p) == -1
}

/// Homomorphic XOR: multiply ciphertexts.
pub fn xor_ciphertexts(pk: &PublicKey, a: &BigUint, b: &BigUint) -> BigUint {
    mul_mod(a, b, &pk.n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngkit::SeedableRng;

    fn rng() -> rngkit::rngs::StdRng {
        rngkit::rngs::StdRng::seed_from_u64(2024)
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let mut r = rng();
        let (pk, sk) = keygen(&mut r, 64);
        for _ in 0..20 {
            for bit in [false, true] {
                let c = encrypt(&pk, bit, &mut r);
                assert_eq!(decrypt(&sk, &c), bit);
            }
        }
    }

    #[test]
    fn ciphertexts_are_randomized() {
        let mut r = rng();
        let (pk, _) = keygen(&mut r, 48);
        let c1 = encrypt(&pk, true, &mut r);
        let c2 = encrypt(&pk, true, &mut r);
        assert_ne!(c1, c2, "semantic security requires randomized ciphertexts");
    }

    #[test]
    fn all_ciphertexts_have_jacobi_plus_one() {
        // An eavesdropper's best tool — the Jacobi symbol — is useless.
        let mut r = rng();
        let (pk, _) = keygen(&mut r, 48);
        for bit in [false, true] {
            for _ in 0..10 {
                let c = encrypt(&pk, bit, &mut r);
                assert_eq!(jacobi(&c, &pk.n), 1);
            }
        }
    }

    #[test]
    fn xor_homomorphism() {
        let mut r = rng();
        let (pk, sk) = keygen(&mut r, 64);
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let ca = encrypt(&pk, a, &mut r);
            let cb = encrypt(&pk, b, &mut r);
            let cx = xor_ciphertexts(&pk, &ca, &cb);
            assert_eq!(decrypt(&sk, &cx), a ^ b, "a={a} b={b}");
        }
    }

    #[test]
    fn long_homomorphic_chain() {
        let mut r = rng();
        let (pk, sk) = keygen(&mut r, 48);
        let bits: Vec<bool> = (0..25).map(|i| i % 3 == 0).collect();
        let expected = bits.iter().fold(false, |acc, &b| acc ^ b);
        let mut acc = encrypt(&pk, false, &mut r);
        for &b in &bits {
            let c = encrypt(&pk, b, &mut r);
            acc = xor_ciphertexts(&pk, &acc, &c);
        }
        assert_eq!(decrypt(&sk, &acc), expected);
    }
}
