//! (m, t)-redundant multi-server XOR PIR: byzantine/silent servers are
//! detected and masked.
//!
//! The basic [`crate::linear`] scheme trusts every server: one corrupted
//! answer XORs straight into the reconstructed record and the client
//! cannot tell. This module replicates the 2-server CGKS retrieval across
//! **disjoint server pairs** — servers `(2p, 2p+1)` form pair `p` — and
//! verifies each pair's reconstruction against a per-record checksum
//! held in a parallel tag table ([`VerifiedDatabase`]). With `m ≥ 2(t + 1)`
//! servers the client survives any `t` faulty servers, whatever they do:
//!
//! * a **silent** server (drop / timeout) fails its pair after a bounded
//!   number of deterministic retries; the client fails over to the next
//!   pair;
//! * a **byzantine** server (corrupted answer) makes its pair's
//!   reconstruction fail the checksum; the client discards it and fails
//!   over — a wrong record is *never* returned, because every returned
//!   record passed verification;
//! * `t` faults can spoil at most `t` pairs, so one of the `t + 1` pairs
//!   is clean and verification accepts it.
//!
//! Pairs are disjoint, so privacy degrades gracefully: each pair sees an
//! independent 2-share split of the selection vector and no server ever
//! sees more than one share — the collusion threshold of the underlying
//! scheme is unchanged.
//!
//! **Cost.** With no faults only pair 0 is queried: the overhead over a
//! plain 2-server retrieval is just the checksum bytes on the downlink —
//! words scanned are *identical*. At `t = 1` (worst case, one spoiled
//! pair) the client scans at most 2× the words of the fault-free run,
//! meeting the `< 2×` budget of EXPERIMENTS P4 in every non-degraded run
//! and exactly 2× only when a fault actually fired. Tags live in their
//! own [`TAG_BYTES`]-byte-record table rather than appended inline, so
//! the payload scan keeps the original record stride — appending 8 bytes
//! to every record was measured to cost ~3× wall time on 32-byte records
//! by breaking the XOR kernel's vectorization-friendly layout.
//!
//! Faults are injected through `faultkit` at two sites: `pir.server_drop`
//! (a server never answers this attempt) and `pir.corrupt_word` (a server
//! answers with one 64-bit word flipped). Timeouts and backoff are
//! *simulated deterministically* — accounted in milliseconds, never
//! wall-clock-measured — so retrieval outcomes are reproducible.

use crate::bits::BitVec;
use crate::cost::{packed_mask_bits, CostReport};
use crate::linear::Query;
use crate::store::Database;
use rngkit::Rng;
use std::fmt;

/// Bytes of checksum per record in a [`VerifiedDatabase`]'s tag table.
pub const TAG_BYTES: usize = 8;

/// FNV-1a over the record index and payload — the per-record checksum.
/// Keying by index means a byzantine server cannot substitute one valid
/// record (with its valid tag) for another.
fn record_tag(index: usize, payload: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in (index as u64).to_le_bytes().iter().chain(payload) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A replicated database paired with a parallel table of per-record
/// [`TAG_BYTES`]-byte checksums over `(index, payload)`, so a client can
/// verify any reconstructed record without trusting the servers. Every
/// server holds both tables and answers one selection mask against each;
/// keeping tags out of the payload records preserves the payload scan's
/// memory stride (see the module docs for the measured cost of inlining).
#[derive(Debug, Clone)]
pub struct VerifiedDatabase {
    payloads: Database,
    tags: Database,
}

impl VerifiedDatabase {
    /// Tags and stores `records` (all the same length, like
    /// [`Database::new`]).
    pub fn new(records: Vec<Vec<u8>>) -> Self {
        let tags = records
            .iter()
            .enumerate()
            .map(|(i, r)| record_tag(i, r).to_le_bytes().to_vec())
            .collect();
        Self {
            payloads: Database::new(records),
            tags: Database::new(tags),
        }
    }

    /// Tags an existing plain database.
    pub fn from_database(db: &Database) -> Self {
        Self::new((0..db.len()).map(|i| db.record(i).to_vec()).collect())
    }

    /// The payload replica every server holds.
    pub fn database(&self) -> &Database {
        &self.payloads
    }

    /// The checksum table every server holds alongside the payloads.
    pub fn tags(&self) -> &Database {
        &self.tags
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.payloads.len()
    }

    /// True when the database holds no records.
    pub fn is_empty(&self) -> bool {
        self.payloads.len() == 0
    }

    /// Bytes per payload record.
    pub fn payload_size(&self) -> usize {
        self.payloads.record_size()
    }

    /// True iff `payload` and `tag` reconstruct the checksummed record
    /// stored at `index`.
    fn verify(&self, index: usize, payload: &[u8], tag: &[u8]) -> bool {
        record_tag(index, payload).to_le_bytes() == tag
    }
}

/// Deterministic per-server retry schedule. All durations are simulated
/// accounting (reported in [`Robust::waited_ms`]), never measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Additional attempts after the first, per server.
    pub max_retries: u32,
    /// Simulated per-attempt timeout in milliseconds.
    pub timeout_ms: u64,
    /// Simulated backoff before retry `r` is `backoff_ms << r`.
    pub backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            timeout_ms: 10,
            backoff_ms: 1,
        }
    }
}

/// Why a redundant retrieval failed. Degraded-but-correct outcomes are
/// *not* errors — they return [`Robust`] with `degraded = true`; an error
/// means no verified record could be produced (never a wrong record).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PirError {
    /// `m < 2(t + 1)`: not enough servers to mask `t` faults.
    TooFewServers {
        /// Servers available.
        servers: usize,
        /// Servers required for the requested tolerance.
        needed: usize,
    },
    /// Every pair was spoiled — more than `t` faulty servers, or an
    /// unlucky fault plan. Carries the evidence gathered on the way.
    Exhausted {
        /// Pairs attempted (always `t + 1`).
        pairs_tried: usize,
        /// Server attempts that timed out (after retries).
        timeouts: u64,
        /// Pair reconstructions that failed checksum verification.
        corrupt_pairs: u64,
    },
}

impl fmt::Display for PirError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PirError::TooFewServers { servers, needed } => write!(
                f,
                "redundant PIR needs {needed} servers for this fault tolerance, have {servers}"
            ),
            PirError::Exhausted {
                pairs_tried,
                timeouts,
                corrupt_pairs,
            } => write!(
                f,
                "all {pairs_tried} server pairs failed \
                 ({timeouts} timeouts, {corrupt_pairs} corrupt reconstructions)"
            ),
        }
    }
}

impl std::error::Error for PirError {}

/// A successful redundant retrieval: the verified record plus an account
/// of what was survived along the way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Robust {
    /// The verified record payload (checksum stripped).
    pub record: Vec<u8>,
    /// True when any fault was masked on the way — the result is still
    /// correct (it passed verification), but service was degraded.
    pub degraded: bool,
    /// Pairs queried until one verified (1 = fault-free fast path).
    pub pairs_tried: usize,
    /// Server attempts that timed out and were retried or failed over.
    pub timeouts_masked: u64,
    /// Pair reconstructions discarded for failing the checksum.
    pub corrupt_pairs_masked: u64,
    /// Total simulated waiting (timeouts + backoff), in milliseconds.
    pub waited_ms: u64,
    /// Communication/computation accounting for everything attempted.
    pub cost: CostReport,
}

/// Per-retrieval running tallies, flushed to obs once at the end.
#[derive(Default)]
struct Stats {
    words_scanned: u64,
    server_ops: u64,
    answers: u64,
    attempts_sent: u64,
    timeouts: u64,
    corrupt_pairs: u64,
    waited_ms: u64,
}

/// One server's answer under the fault plan: retries on injected drops
/// (accounting simulated timeout + exponential backoff per retry) and
/// applies injected word corruption. `None` means the server stayed
/// silent through every attempt.
fn query_server(
    vdb: &VerifiedDatabase,
    share: &BitVec,
    policy: &RetryPolicy,
    stats: &mut Stats,
) -> Option<(Vec<u8>, Vec<u8>)> {
    for attempt in 0..=policy.max_retries {
        stats.attempts_sent += 1;
        if faultkit::fire("pir.server_drop") {
            stats.timeouts += 1;
            stats.waited_ms += policy.timeout_ms + (policy.backoff_ms << attempt);
            continue;
        }
        // One mask selects from both tables in a single fused sweep: the
        // payload answer and the matching checksum answer.
        let (mut payload, mut tag) = vdb.payloads.xor_selected_joint(&vdb.tags, share);
        stats.words_scanned += share.words().len() as u64;
        stats.server_ops += share.count_ones();
        stats.answers += 1;
        if faultkit::fire("pir.corrupt_word") {
            // A byzantine server: flip one answer bit. The bit position
            // varies with the answer ordinal so the two corruptions of
            // one pair can never cancel in the XOR.
            let flipped = 1u8 << ((stats.answers - 1) % 8);
            match payload.first_mut() {
                Some(b) => *b ^= flipped,
                None => tag[0] ^= flipped, // zero-length payloads
            }
        }
        return Some((payload, tag));
    }
    None
}

/// Retrieves record `index` from `m` replicas of `vdb`, tolerating up to
/// `t` faulty (silent or byzantine) servers. Requires `m ≥ 2(t + 1)`.
///
/// Pairs are tried in order; the first whose reconstruction passes the
/// checksum wins. Returns [`Robust`] (possibly `degraded`) on success,
/// a typed [`PirError`] — never a wrong record — on failure.
///
/// ```
/// use tdf_pir::redundant::{retrieve, RetryPolicy, VerifiedDatabase};
/// use rngkit::SeedableRng;
///
/// let vdb = VerifiedDatabase::new(vec![vec![1u8], vec![2], vec![3]]);
/// let mut rng = rngkit::rngs::StdRng::seed_from_u64(7);
/// let out = retrieve(&mut rng, &vdb, 4, 1, 1, &RetryPolicy::default()).unwrap();
/// assert_eq!(out.record, vec![2]);
/// assert!(!out.degraded); // no faults: pair 0 answered and verified
/// ```
pub fn retrieve<R: Rng + ?Sized>(
    rng: &mut R,
    vdb: &VerifiedDatabase,
    m: usize,
    t: usize,
    index: usize,
    policy: &RetryPolicy,
) -> Result<Robust, PirError> {
    let needed = 2 * (t + 1);
    if m < needed {
        return Err(PirError::TooFewServers { servers: m, needed });
    }
    assert!(index < vdb.len(), "index out of range");
    let mut stats = Stats::default();
    let mut outcome = None;
    let mut pairs_attempted = 0usize;
    for pair in 0..=t {
        pairs_attempted = pair + 1;
        let q = Query::build(rng, vdb.len(), 2, index);
        let a = query_server(vdb, q.share(0), policy, &mut stats);
        let b = query_server(vdb, q.share(1), policy, &mut stats);
        let (Some((mut payload, mut tag)), Some((payload_b, tag_b))) = (a, b) else {
            continue; // a silent server spoils the pair; fail over
        };
        for (x, y) in payload.iter_mut().zip(&payload_b) {
            *x ^= y;
        }
        for (x, y) in tag.iter_mut().zip(&tag_b) {
            *x ^= y;
        }
        if vdb.verify(index, &payload, &tag) {
            let degraded = pair > 0 || stats.timeouts > 0;
            outcome = Some((payload, degraded, pair + 1));
            break;
        }
        stats.corrupt_pairs += 1;
    }
    obs::count("pir.redundant.retrievals", 1);
    obs::count("pir.words_scanned", stats.words_scanned);
    obs::count("pir.redundant.timeouts", stats.timeouts);
    obs::count("pir.redundant.corrupt_pairs", stats.corrupt_pairs);
    let cost = CostReport {
        uplink_bits: packed_mask_bits(1, vdb.len()) * stats.attempts_sent,
        downlink_bits: stats.answers * ((vdb.payload_size() + TAG_BYTES) * 8) as u64,
        server_ops: stats.server_ops,
        words_scanned: stats.words_scanned,
        servers: 2 * pairs_attempted as u32,
    };
    match outcome {
        Some((record, degraded, pairs_tried)) => {
            if degraded {
                obs::count("pir.redundant.degraded", 1);
            }
            Ok(Robust {
                record,
                degraded,
                pairs_tried,
                timeouts_masked: stats.timeouts,
                corrupt_pairs_masked: stats.corrupt_pairs,
                waited_ms: stats.waited_ms,
                cost,
            })
        }
        None => {
            obs::count("pir.redundant.exhausted", 1);
            Err(PirError::Exhausted {
                pairs_tried: t + 1,
                timeouts: stats.timeouts,
                corrupt_pairs: stats.corrupt_pairs,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngkit::SeedableRng;
    use std::sync::Mutex;

    /// The fault plan is process-global: serialise tests that install one.
    static PLAN: Mutex<()> = Mutex::new(());

    fn with_fault_plan<T>(text: &str, f: impl FnOnce() -> T) -> T {
        let _guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
        faultkit::set_plan(Some(faultkit::FaultPlan::parse(text).unwrap()));
        let out = f();
        faultkit::set_plan(None);
        out
    }

    fn rng() -> rngkit::rngs::StdRng {
        rngkit::rngs::StdRng::seed_from_u64(4242)
    }

    fn vdb(n: usize) -> VerifiedDatabase {
        VerifiedDatabase::new(
            (0..n)
                .map(|i| vec![i as u8, (i * 13) as u8, 0xC4])
                .collect(),
        )
    }

    #[test]
    fn fault_free_retrieval_is_correct_and_not_degraded() {
        let vdb = vdb(50);
        let mut r = rng();
        for i in 0..vdb.len() {
            let out = retrieve(&mut r, &vdb, 4, 1, i, &RetryPolicy::default()).unwrap();
            assert_eq!(out.record, vec![i as u8, (i * 13) as u8, 0xC4], "index {i}");
            assert!(!out.degraded);
            assert_eq!(out.pairs_tried, 1);
            assert_eq!(out.waited_ms, 0);
        }
    }

    #[test]
    fn fault_free_words_scanned_match_a_plain_two_server_retrieval() {
        let vdb = vdb(500);
        let mut r = rng();
        let out = retrieve(&mut r, &vdb, 4, 1, 7, &RetryPolicy::default()).unwrap();
        assert_eq!(
            out.cost.words_scanned,
            crate::cost::linear_scan_words(2, 500),
            "no-fault fast path queries exactly one pair"
        );
    }

    #[test]
    fn too_few_servers_is_a_typed_error() {
        let vdb = vdb(8);
        let mut r = rng();
        assert_eq!(
            retrieve(&mut r, &vdb, 3, 1, 0, &RetryPolicy::default()),
            Err(PirError::TooFewServers {
                servers: 3,
                needed: 4
            })
        );
    }

    #[test]
    fn one_dropped_server_is_retried_and_masked() {
        // Budget 1 at rate 1: exactly the first attempt drops; the retry
        // succeeds, so pair 0 still verifies — degraded but correct.
        let out = with_fault_plan("pir.server_drop=1", || {
            let vdb = vdb(40);
            let mut r = rng();
            retrieve(&mut r, &vdb, 4, 1, 9, &RetryPolicy::default())
        })
        .unwrap();
        assert_eq!(out.record[0], 9);
        assert!(out.degraded);
        assert_eq!(out.pairs_tried, 1);
        assert_eq!(out.timeouts_masked, 1);
        assert!(out.waited_ms > 0, "simulated timeout + backoff accounted");
    }

    #[test]
    fn a_silent_server_beyond_retries_fails_over_to_the_next_pair() {
        // Three drops at rate 1 exhaust server 0's attempts (1 + 2
        // retries): pair 0 dies silent, pair 1 answers and verifies.
        let out = with_fault_plan("pir.server_drop=3", || {
            let vdb = vdb(40);
            let mut r = rng();
            retrieve(&mut r, &vdb, 4, 1, 11, &RetryPolicy::default())
        })
        .unwrap();
        assert_eq!(out.record[0], 11);
        assert!(out.degraded);
        assert_eq!(out.pairs_tried, 2);
        assert_eq!(out.timeouts_masked, 3);
    }

    #[test]
    fn a_corrupt_answer_is_detected_and_masked_within_two_x_words() {
        let baseline = {
            let vdb = vdb(300);
            let mut r = rng();
            retrieve(&mut r, &vdb, 4, 1, 23, &RetryPolicy::default()).unwrap()
        };
        let out = with_fault_plan("pir.corrupt_word=1", || {
            let vdb = vdb(300);
            let mut r = rng();
            retrieve(&mut r, &vdb, 4, 1, 23, &RetryPolicy::default())
        })
        .unwrap();
        assert_eq!(out.record, baseline.record, "masked, still correct");
        assert!(out.degraded);
        assert_eq!(out.pairs_tried, 2);
        assert_eq!(out.corrupt_pairs_masked, 1);
        assert_eq!(
            out.cost.words_scanned,
            2 * baseline.cost.words_scanned,
            "t = 1 failover costs exactly 2× the fault-free scan"
        );
    }

    #[test]
    fn beyond_t_faults_yields_a_typed_error_never_a_wrong_record() {
        // Every answer corrupted (rate 1, unbounded budget): no pair can
        // verify — the per-answer bit positions never cancel.
        let err = with_fault_plan("pir.corrupt_word=0", || {
            let vdb = vdb(40);
            let mut r = rng();
            retrieve(&mut r, &vdb, 6, 2, 5, &RetryPolicy::default())
        })
        .unwrap_err();
        match err {
            PirError::Exhausted {
                pairs_tried,
                corrupt_pairs,
                ..
            } => {
                assert_eq!(pairs_tried, 3);
                assert!(corrupt_pairs >= 1);
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }

        // Every server silent: same refusal, via timeouts.
        let err = with_fault_plan("pir.server_drop=0", || {
            let vdb = vdb(40);
            let mut r = rng();
            retrieve(&mut r, &vdb, 4, 1, 5, &RetryPolicy::default())
        })
        .unwrap_err();
        match err {
            PirError::Exhausted { timeouts, .. } => {
                // 2 pairs × 2 servers × (1 + 2 retries) attempts.
                assert_eq!(timeouts, 12);
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn randomized_fault_plans_never_return_a_wrong_record() {
        // Whatever the plan injects, every Ok is the true record.
        let vdb = vdb(60);
        for seed in 0..30u64 {
            let plan = format!(
                "pir.server_drop=0@0.{:02},pir.corrupt_word=0@0.{:02}",
                (seed * 7) % 100,
                (seed * 13) % 100
            );
            let _guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
            faultkit::set_plan(Some(
                faultkit::FaultPlan::parse_with_seed(&plan, seed).unwrap(),
            ));
            let mut r = rngkit::rngs::StdRng::seed_from_u64(seed);
            for i in [0usize, 17, 59] {
                if let Ok(out) = retrieve(&mut r, &vdb, 6, 2, i, &RetryPolicy::default()) {
                    assert_eq!(
                        out.record,
                        vec![i as u8, (i * 13) as u8, 0xC4],
                        "seed {seed} index {i}"
                    );
                }
            }
            faultkit::set_plan(None);
        }
    }

    #[test]
    fn zero_rate_plan_is_bit_identical_to_no_plan() {
        let run = || {
            let vdb = vdb(80);
            let mut r = rng();
            (0..vdb.len())
                .map(|i| retrieve(&mut r, &vdb, 4, 1, i, &RetryPolicy::default()).unwrap())
                .collect::<Vec<_>>()
        };
        let baseline = {
            let _guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
            faultkit::set_plan(None);
            run()
        };
        let gated = with_fault_plan(
            "pir.server_drop=9@0,pir.corrupt_word=9@0,par.worker_panic=9@0",
            run,
        );
        assert_eq!(baseline, gated);
    }

    #[test]
    fn verified_database_round_trips_and_rejects_tampering() {
        let vdb = vdb(10);
        assert_eq!(vdb.payload_size(), 3);
        assert_eq!(vdb.database().record_size(), 3, "tags are out-of-band");
        assert_eq!(vdb.tags().record_size(), TAG_BYTES);
        let payload = vdb.database().record(4).to_vec();
        let tag = vdb.tags().record(4).to_vec();
        assert!(vdb.verify(4, &payload, &tag));
        assert!(!vdb.verify(5, &payload, &tag), "index is part of the tag");
        let mut tampered = payload.clone();
        tampered[0] ^= 1;
        assert!(!vdb.verify(4, &tampered, &tag));
        let mut bad_tag = tag;
        bad_tag[3] ^= 0x10;
        assert!(!vdb.verify(4, &payload, &bad_tag));

        let plain = Database::new(vec![vec![7u8, 8], vec![9, 10]]);
        let re = VerifiedDatabase::from_database(&plain);
        assert_eq!(re.payload_size(), 2);
        assert!(re.verify(1, re.database().record(1), re.tags().record(1)));
    }
}
