//! Communication and computation accounting for PIR protocols.
//!
//! Selection masks travel word-packed (see [`crate::bits::BitVec`]), so
//! mask uplink is charged at the packed size: a `b`-bit mask costs
//! `words_for(b) * 64` bits on the wire. [`packed_mask_bits`] is the one
//! place that rounding lives.

use crate::bits::words_for;
use std::ops::{Add, AddAssign};

/// Wire size in bits of `masks` packed selection vectors of `bits` bits
/// each: every mask is padded up to whole 64-bit words.
pub fn packed_mask_bits(masks: usize, bits: usize) -> u64 {
    (masks * words_for(bits) * 64) as u64
}

/// Cost of one PIR retrieval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostReport {
    /// Bits sent from client to servers.
    pub uplink_bits: u64,
    /// Bits sent from servers to client.
    pub downlink_bits: u64,
    /// Record-level operations performed by all servers combined
    /// (XORs of records or modular multiplications).
    pub server_ops: u64,
    /// Packed mask words scanned by all servers combined — the analytical
    /// prediction of the same quantity the `pir.words_scanned` counter
    /// (`tdf-obs`) measures at the scan sites. Zero for schemes without
    /// packed masks (trivial download, computational PIR).
    pub words_scanned: u64,
    /// Number of servers contacted.
    pub servers: u32,
}

impl CostReport {
    /// Total bits over the wire in both directions.
    pub fn total_bits(&self) -> u64 {
        self.uplink_bits + self.downlink_bits
    }
}

impl Add for CostReport {
    type Output = CostReport;
    fn add(self, rhs: CostReport) -> CostReport {
        CostReport {
            uplink_bits: self.uplink_bits + rhs.uplink_bits,
            downlink_bits: self.downlink_bits + rhs.downlink_bits,
            server_ops: self.server_ops + rhs.server_ops,
            words_scanned: self.words_scanned + rhs.words_scanned,
            servers: self.servers.max(rhs.servers),
        }
    }
}

/// Words scanned by a `k`-server linear retrieval over `n` records: each
/// server sweeps its whole packed `n`-bit mask once.
pub fn linear_scan_words(k: usize, n: usize) -> u64 {
    (k * words_for(n)) as u64
}

/// Words scanned by the two-server square scheme with side `s`: each
/// server re-scans its packed `s`-bit row mask once per column.
pub fn square_scan_words(s: usize) -> u64 {
    (2 * s * words_for(s)) as u64
}

/// Words scanned by *one* cube server whose per-axis subsets have the
/// given popcounts: the sub-box enumeration visits axis `a` once per
/// combination of chosen positions on axes `0..a` (the product of their
/// popcounts — one visit for `a = 0`), and every visit sweeps that axis's
/// packed `s`-bit subset once.
pub fn cube_scan_words(s: usize, popcounts: &[u64]) -> u64 {
    let mut scans = 0u64;
    let mut combos = 1u64;
    for &pc in popcounts {
        scans += combos;
        combos *= pc;
    }
    scans * words_for(s) as u64
}

/// Words scanned by a fused batch of `q` two-server queries over `n`
/// records: both servers decode each of the `q` packed masks once — the
/// same mask-word total as `q` sequential retrievals. Fusion wins on
/// *data* traffic (each record window is read once per sweep instead of
/// once per query), which the wall-clock gate in `scaling_gate` measures;
/// the mask-scan model is deliberately identical so that measured ==
/// predicted stays exact for batches of any size.
pub fn batch_scan_words(q: usize, n: usize) -> u64 {
    (2 * q * words_for(n)) as u64
}

/// Record-data words fetched by one hint-based online answer: the server
/// XORs the `set_size − 1` punctured-subset members, each a record of
/// `record_size` bytes (⌈record_size/8⌉ words) — o(n) when `set_size` is
/// the √n block count.
pub fn hint_online_words(set_size: usize, record_size: usize) -> u64 {
    (set_size.saturating_sub(1) * record_size.div_ceil(8)) as u64
}

/// Record-data words folded by an offline hint-preparation pass:
/// `hints` parities, each aggregating a `set_size`-member subset.
pub fn hint_offline_words(hints: usize, set_size: usize, record_size: usize) -> u64 {
    (hints * set_size * record_size.div_ceil(8)) as u64
}

impl AddAssign for CostReport {
    fn add_assign(&mut self, rhs: CostReport) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_word_models() {
        // Linear: every server sweeps ⌈n/64⌉ words once.
        assert_eq!(linear_scan_words(2, 64), 2);
        assert_eq!(linear_scan_words(3, 65), 6);
        // Square: 2 servers × s column scans of ⌈s/64⌉ words.
        assert_eq!(square_scan_words(8), 16);
        assert_eq!(square_scan_words(70), 280);
        // Cube, one server: axis 0 scanned once, axis 1 once per set bit
        // of axis 0, and so on.
        assert_eq!(cube_scan_words(8, &[3]), 1);
        assert_eq!(cube_scan_words(8, &[3, 5]), 1 + 3);
        assert_eq!(cube_scan_words(8, &[3, 5, 2]), 1 + 3 + 15);
        assert_eq!(cube_scan_words(100, &[3, 5]), (1 + 3) * 2);
        // A zero popcount prunes every deeper visit.
        assert_eq!(cube_scan_words(8, &[0, 9]), 1);
    }

    #[test]
    fn batch_and_hint_models() {
        // A batch of one costs exactly one two-server linear retrieval.
        assert_eq!(batch_scan_words(1, 100), linear_scan_words(2, 100));
        assert_eq!(batch_scan_words(8, 65), 2 * 8 * 2);
        // Hint online: set_size − 1 records of ⌈rs/8⌉ words.
        assert_eq!(hint_online_words(100, 32), 99 * 4);
        assert_eq!(hint_online_words(100, 9), 99 * 2);
        assert_eq!(hint_online_words(0, 32), 0);
        // Hint offline: hints × set_size record folds.
        assert_eq!(hint_offline_words(10, 100, 32), 10 * 100 * 4);
    }

    #[test]
    fn packed_mask_rounds_to_words() {
        assert_eq!(packed_mask_bits(1, 1), 64);
        assert_eq!(packed_mask_bits(1, 64), 64);
        assert_eq!(packed_mask_bits(1, 65), 128);
        assert_eq!(packed_mask_bits(2, 100), 256);
        assert_eq!(packed_mask_bits(3, 0), 0);
    }

    #[test]
    fn totals_and_accumulation() {
        let a = CostReport {
            uplink_bits: 10,
            downlink_bits: 20,
            server_ops: 5,
            words_scanned: 40,
            servers: 2,
        };
        let b = CostReport {
            uplink_bits: 1,
            downlink_bits: 2,
            server_ops: 3,
            words_scanned: 4,
            servers: 1,
        };
        let c = a + b;
        assert_eq!(c.total_bits(), 33);
        assert_eq!(c.server_ops, 8);
        assert_eq!(c.words_scanned, 44);
        assert_eq!(c.servers, 2);
        let mut acc = CostReport::default();
        acc += a;
        acc += b;
        assert_eq!(acc, c);
    }
}
