//! Communication and computation accounting for PIR protocols.
//!
//! Selection masks travel word-packed (see [`crate::bits::BitVec`]), so
//! mask uplink is charged at the packed size: a `b`-bit mask costs
//! `words_for(b) * 64` bits on the wire. [`packed_mask_bits`] is the one
//! place that rounding lives.

use crate::bits::words_for;
use std::ops::{Add, AddAssign};

/// Wire size in bits of `masks` packed selection vectors of `bits` bits
/// each: every mask is padded up to whole 64-bit words.
pub fn packed_mask_bits(masks: usize, bits: usize) -> u64 {
    (masks * words_for(bits) * 64) as u64
}

/// Cost of one PIR retrieval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostReport {
    /// Bits sent from client to servers.
    pub uplink_bits: u64,
    /// Bits sent from servers to client.
    pub downlink_bits: u64,
    /// Record-level operations performed by all servers combined
    /// (XORs of records or modular multiplications).
    pub server_ops: u64,
    /// Number of servers contacted.
    pub servers: u32,
}

impl CostReport {
    /// Total bits over the wire in both directions.
    pub fn total_bits(&self) -> u64 {
        self.uplink_bits + self.downlink_bits
    }
}

impl Add for CostReport {
    type Output = CostReport;
    fn add(self, rhs: CostReport) -> CostReport {
        CostReport {
            uplink_bits: self.uplink_bits + rhs.uplink_bits,
            downlink_bits: self.downlink_bits + rhs.downlink_bits,
            server_ops: self.server_ops + rhs.server_ops,
            servers: self.servers.max(rhs.servers),
        }
    }
}

impl AddAssign for CostReport {
    fn add_assign(&mut self, rhs: CostReport) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_mask_rounds_to_words() {
        assert_eq!(packed_mask_bits(1, 1), 64);
        assert_eq!(packed_mask_bits(1, 64), 64);
        assert_eq!(packed_mask_bits(1, 65), 128);
        assert_eq!(packed_mask_bits(2, 100), 256);
        assert_eq!(packed_mask_bits(3, 0), 0);
    }

    #[test]
    fn totals_and_accumulation() {
        let a = CostReport {
            uplink_bits: 10,
            downlink_bits: 20,
            server_ops: 5,
            servers: 2,
        };
        let b = CostReport {
            uplink_bits: 1,
            downlink_bits: 2,
            server_ops: 3,
            servers: 1,
        };
        let c = a + b;
        assert_eq!(c.total_bits(), 33);
        assert_eq!(c.server_ops, 8);
        assert_eq!(c.servers, 2);
        let mut acc = CostReport::default();
        acc += a;
        acc += b;
        assert_eq!(acc, c);
    }
}
