//! The 2^d-server "cube" scheme of Chor–Goldreich–Kushilevitz–Sudan [8].
//!
//! The database is a d-dimensional cube `[s]^d` with `s = ⌈n^(1/d)⌉`. The
//! client picks one random subset `S_j ⊆ [s]` per axis; the server indexed
//! by bits `σ ∈ {0,1}^d` receives, per axis `j`, either `S_j` (σ_j = 0) or
//! `S_j Δ {i_j}` (σ_j = 1), and answers with the XOR of all records in the
//! sub-box it was given. XORing the 2^d answers cancels every record except
//! the one at `(i_1, …, i_d)`.
//!
//! Uplink is one packed `d·s`-bit mask per server and the downlink a
//! single record — total communication `O(2^d · d · n^{1/d})`, the classic
//! trade of more servers for asymptotically less traffic. The 2^d server
//! answers are computed in parallel (one `par` task per server) and folded
//! in σ order, so results are bit-identical at any `TDF_THREADS`. `d = 1`
//! degenerates to the [`crate::linear`] two-server scheme.

use crate::bits::BitVec;
use crate::cost::{packed_mask_bits, CostReport};
use crate::store::{Database, ServerView};
use rngkit::Rng;

/// Side length for a `d`-dimensional layout of `n` records.
pub fn side(n: usize, d: u32) -> usize {
    (n as f64).powf(1.0 / d as f64).ceil() as usize
}

/// Decomposes `index` into cube coordinates (little-endian axes).
fn coords(index: usize, s: usize, d: u32) -> Vec<usize> {
    let mut c = Vec::with_capacity(d as usize);
    let mut rest = index;
    for _ in 0..d {
        c.push(rest % s);
        rest /= s;
    }
    c
}

/// Retrieves record `index` with the `2^d`-server cube scheme.
///
/// Returns the record, one view per server, and the cost. Panics when
/// `d = 0` or the index is out of range.
pub fn retrieve<R: Rng + ?Sized>(
    rng: &mut R,
    db: &Database,
    d: u32,
    index: usize,
) -> (Vec<u8>, Vec<ServerView>, CostReport) {
    assert!(d >= 1, "cube dimension must be at least 1");
    assert!(index < db.len(), "index out of range");
    let s = side(db.len(), d);
    let target = coords(index, s, d);

    // One random subset per axis, drawn before the parallel section so
    // the RNG stream is independent of scheduling.
    let base: Vec<BitVec> = (0..d).map(|_| BitVec::random(rng, s)).collect();

    let servers = 1usize << d;
    // Every server's answer is independent: compute them in parallel and
    // fold below in σ order.
    let per_server = par::par_map_range(servers, |sigma| {
        // This server's per-axis subsets.
        let subsets: Vec<BitVec> = (0..d as usize)
            .map(|j| {
                let mut sub = base[j].clone();
                if sigma >> j & 1 == 1 {
                    sub.flip(target[j]);
                }
                sub
            })
            .collect();
        // XOR of every record in the sub-box (positions beyond n are
        // implicit zero padding).
        let mut answer = vec![0u8; db.record_size()];
        let mut ops = 0u64;
        let mut scanned = 0u64;
        let mut stack = vec![(0usize, 0usize)]; // (axis, partial index)
        while let Some((axis, partial)) = stack.pop() {
            if axis == d as usize {
                if partial < db.len() {
                    for (a, b) in answer.iter_mut().zip(db.record(partial)) {
                        *a ^= b;
                    }
                    ops += 1;
                }
                continue;
            }
            let stride = s.pow(axis as u32);
            scanned += subsets[axis].words().len() as u64;
            for pos in subsets[axis].ones() {
                stack.push((axis + 1, partial + pos * stride));
            }
        }
        obs::count("pir.words_scanned", scanned);
        // The analytical model for this server's sweep count, from the
        // subset popcounts; `cost.rs` tests pin measured == predicted.
        let popcounts: Vec<u64> = subsets.iter().map(BitVec::count_ones).collect();
        let predicted = crate::cost::cube_scan_words(s, &popcounts);
        // The server's whole view is its d subsets, concatenated into one
        // packed mask.
        let mut view = BitVec::zeros(0);
        for sub in &subsets {
            view.extend_from(sub);
        }
        (answer, view, ops, predicted)
    });

    let mut acc = vec![0u8; db.record_size()];
    let mut views = Vec::with_capacity(servers);
    let mut server_ops = 0u64;
    let mut words_scanned = 0u64;
    for (answer, view, ops, predicted) in per_server {
        for (a, b) in acc.iter_mut().zip(&answer) {
            *a ^= b;
        }
        views.push(ServerView::Mask(view));
        server_ops += ops;
        words_scanned += predicted;
    }

    let cost = CostReport {
        uplink_bits: packed_mask_bits(servers, d as usize * s),
        downlink_bits: (servers * db.record_size() * 8) as u64,
        server_ops,
        words_scanned,
        servers: servers as u32,
    };
    (acc, views, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngkit::SeedableRng;

    fn rng() -> rngkit::rngs::StdRng {
        rngkit::rngs::StdRng::seed_from_u64(0xC0BE)
    }

    fn db(n: usize) -> Database {
        Database::new(
            (0..n)
                .map(|i| vec![(i % 251) as u8, (i / 7) as u8])
                .collect(),
        )
    }

    #[test]
    fn d1_matches_the_linear_scheme_semantics() {
        let db = db(20);
        let mut r = rng();
        for i in 0..db.len() {
            let (rec, views, cost) = retrieve(&mut r, &db, 1, i);
            assert_eq!(rec, db.record(i), "index {i}");
            assert_eq!(views.len(), 2);
            assert_eq!(cost.servers, 2);
        }
    }

    #[test]
    fn d2_and_d3_retrieve_every_index() {
        for d in [2u32, 3] {
            // Include non-perfect-power sizes to exercise padding.
            for n in [27usize, 30, 64, 100] {
                let db = db(n);
                let mut r = rng();
                for i in (0..n).step_by(7) {
                    let (rec, _, _) = retrieve(&mut r, &db, d, i);
                    assert_eq!(rec, db.record(i), "d={d} n={n} i={i}");
                }
            }
        }
    }

    #[test]
    fn uplink_shrinks_with_dimension() {
        // Large enough n that word-packing granularity (64-bit floors)
        // does not mask the asymptotic separation.
        let db = db(65_536);
        let mut r = rng();
        let (_, _, c1) = retrieve(&mut r, &db, 1, 9);
        let (_, _, c2) = retrieve(&mut r, &db, 2, 9);
        let (_, _, c3) = retrieve(&mut r, &db, 3, 9);
        // Per-server packed uplink: 1024, 8, and 2 words.
        assert!(c2.uplink_bits < c1.uplink_bits);
        assert!(c3.uplink_bits < c2.uplink_bits);
        assert_eq!(c3.servers, 8);
    }

    #[test]
    fn retrieval_is_identical_across_thread_counts() {
        let db = db(100);
        let run = |threads: usize| {
            par::with_threads(threads, || {
                let mut r = rng();
                retrieve(&mut r, &db, 2, 57)
            })
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn single_server_view_is_uniform() {
        let n = 16; // s = 4 at d = 2
        let db = db(n);
        let mut r = rng();
        let trials = 3000;
        let mut ones = vec![0usize; 8];
        for t in 0..trials {
            let (_, views, _) = retrieve(&mut r, &db, 2, t % n);
            if let ServerView::Mask(m) = &views[0] {
                for p in m.ones() {
                    ones[p] += 1;
                }
            }
        }
        for &c in &ones {
            let f = c as f64 / trials as f64;
            assert!((f - 0.5).abs() < 0.05, "{f}");
        }
    }

    #[test]
    fn coords_round_trip() {
        let s = 5;
        for idx in [0usize, 4, 5, 24, 124] {
            let c = coords(idx, s, 3);
            let back = c[0] + c[1] * s + c[2] * s * s;
            assert_eq!(back, idx);
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_dimension_panics() {
        let mut r = rng();
        let _ = retrieve(&mut r, &db(4), 0, 0);
    }
}
