//! The 2^d-server "cube" scheme of Chor–Goldreich–Kushilevitz–Sudan [8].
//!
//! The database is a d-dimensional cube `[s]^d` with `s = ⌈n^(1/d)⌉`. The
//! client picks one random subset `S_j ⊆ [s]` per axis; the server indexed
//! by bits `σ ∈ {0,1}^d` receives, per axis `j`, either `S_j` (σ_j = 0) or
//! `S_j Δ {i_j}` (σ_j = 1), and answers with the XOR of all records in the
//! sub-box it was given. XORing the 2^d answers cancels every record except
//! the one at `(i_1, …, i_d)`.
//!
//! Uplink is `d·s` bits per server and the downlink a single record —
//! total communication `O(2^d · d · n^{1/d})`, the classic trade of more
//! servers for asymptotically less traffic. `d = 1` degenerates to the
//! [`crate::linear`] two-server scheme.

use crate::cost::CostReport;
use crate::store::{Database, ServerView};
use rngkit::Rng;

/// Side length for a `d`-dimensional layout of `n` records.
pub fn side(n: usize, d: u32) -> usize {
    (n as f64).powf(1.0 / d as f64).ceil() as usize
}

/// Decomposes `index` into cube coordinates (little-endian axes).
fn coords(index: usize, s: usize, d: u32) -> Vec<usize> {
    let mut c = Vec::with_capacity(d as usize);
    let mut rest = index;
    for _ in 0..d {
        c.push(rest % s);
        rest /= s;
    }
    c
}

/// Retrieves record `index` with the `2^d`-server cube scheme.
///
/// Returns the record, one view per server, and the cost. Panics when
/// `d = 0` or the index is out of range.
pub fn retrieve<R: Rng + ?Sized>(
    rng: &mut R,
    db: &Database,
    d: u32,
    index: usize,
) -> (Vec<u8>, Vec<ServerView>, CostReport) {
    assert!(d >= 1, "cube dimension must be at least 1");
    assert!(index < db.len(), "index out of range");
    let s = side(db.len(), d);
    let target = coords(index, s, d);

    // One random subset per axis, as bit masks.
    let base: Vec<Vec<bool>> = (0..d)
        .map(|_| (0..s).map(|_| rng.gen()).collect())
        .collect();

    let servers = 1usize << d;
    let mut acc = vec![0u8; db.record_size()];
    let mut views = Vec::with_capacity(servers);
    let mut server_ops = 0u64;

    for sigma in 0..servers {
        // This server's per-axis subsets.
        let subsets: Vec<Vec<bool>> = (0..d as usize)
            .map(|j| {
                let mut sub = base[j].clone();
                if sigma >> j & 1 == 1 {
                    sub[target[j]] = !sub[target[j]];
                }
                sub
            })
            .collect();
        // XOR of every record in the sub-box (positions beyond n are
        // implicit zero padding).
        let mut answer = vec![0u8; db.record_size()];
        let mut stack = vec![(0usize, 0usize)]; // (axis, partial index)
        while let Some((axis, partial)) = stack.pop() {
            if axis == d as usize {
                if partial < db.len() {
                    for (a, b) in answer.iter_mut().zip(db.record(partial)) {
                        *a ^= b;
                    }
                    server_ops += 1;
                }
                continue;
            }
            let stride = s.pow(axis as u32);
            for (pos, &selected) in subsets[axis].iter().enumerate() {
                if selected {
                    stack.push((axis + 1, partial + pos * stride));
                }
            }
        }
        for (a, b) in acc.iter_mut().zip(&answer) {
            *a ^= b;
        }
        // The server's whole view is its d subsets, flattened.
        views.push(ServerView::Mask(subsets.into_iter().flatten().collect()));
    }

    let cost = CostReport {
        uplink_bits: (servers * d as usize * s) as u64,
        downlink_bits: (servers * db.record_size() * 8) as u64,
        server_ops,
        servers: servers as u32,
    };
    (acc, views, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngkit::SeedableRng;

    fn rng() -> rngkit::rngs::StdRng {
        rngkit::rngs::StdRng::seed_from_u64(0xC0BE)
    }

    fn db(n: usize) -> Database {
        Database::new(
            (0..n)
                .map(|i| vec![(i % 251) as u8, (i / 7) as u8])
                .collect(),
        )
    }

    #[test]
    fn d1_matches_the_linear_scheme_semantics() {
        let db = db(20);
        let mut r = rng();
        for i in 0..db.len() {
            let (rec, views, cost) = retrieve(&mut r, &db, 1, i);
            assert_eq!(rec, db.record(i), "index {i}");
            assert_eq!(views.len(), 2);
            assert_eq!(cost.servers, 2);
        }
    }

    #[test]
    fn d2_and_d3_retrieve_every_index() {
        for d in [2u32, 3] {
            // Include non-perfect-power sizes to exercise padding.
            for n in [27usize, 30, 64, 100] {
                let db = db(n);
                let mut r = rng();
                for i in (0..n).step_by(7) {
                    let (rec, _, _) = retrieve(&mut r, &db, d, i);
                    assert_eq!(rec, db.record(i), "d={d} n={n} i={i}");
                }
            }
        }
    }

    #[test]
    fn uplink_shrinks_with_dimension() {
        let db = db(4096);
        let mut r = rng();
        let (_, _, c1) = retrieve(&mut r, &db, 1, 9);
        let (_, _, c2) = retrieve(&mut r, &db, 2, 9);
        let (_, _, c3) = retrieve(&mut r, &db, 3, 9);
        // Per-server uplink: 4096, 2·64, 3·16.
        assert!(c2.uplink_bits < c1.uplink_bits);
        assert!(c3.uplink_bits < c2.uplink_bits);
        assert_eq!(c3.servers, 8);
    }

    #[test]
    fn single_server_view_is_uniform() {
        let n = 16; // s = 4 at d = 2
        let db = db(n);
        let mut r = rng();
        let trials = 3000;
        let mut ones = vec![0usize; 8];
        for t in 0..trials {
            let (_, views, _) = retrieve(&mut r, &db, 2, t % n);
            if let ServerView::Mask(m) = &views[0] {
                for (p, &b) in m.iter().enumerate() {
                    if b {
                        ones[p] += 1;
                    }
                }
            }
        }
        for &c in &ones {
            let f = c as f64 / trials as f64;
            assert!((f - 0.5).abs() < 0.05, "{f}");
        }
    }

    #[test]
    fn coords_round_trip() {
        let s = 5;
        for idx in [0usize, 4, 5, 24, 124] {
            let c = coords(idx, s, 3);
            let back = c[0] + c[1] * s + c[2] * s * s;
            assert_eq!(back, idx);
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_dimension_panics() {
        let mut r = rng();
        let _ = retrieve(&mut r, &db(4), 0, 0);
    }
}
