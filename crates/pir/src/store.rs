//! The database model shared by all PIR schemes, plus the server *view* —
//! everything a (curious) server observes during a retrieval, from which
//! `tdf-core` computes empirical query leakage.

use crate::bits::{words_for, BitVec};
use std::ops::Range;
use std::sync::Arc;

/// A database of `n` fixed-size records stored contiguously.
///
/// Records live back to back in one `Arc<[u8]>` so that cloning the
/// database (the PIR pipelines replicate it once per server) shares a
/// single allocation, and the XOR-folding hot loop walks a flat buffer
/// instead of chasing one pointer per record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Database {
    data: Arc<[u8]>,
    record_size: usize,
    len: usize,
}

impl Database {
    /// Builds a database from equally-sized records.
    pub fn new(records: Vec<Vec<u8>>) -> Self {
        let record_size = records.first().map_or(0, Vec::len);
        assert!(
            records.iter().all(|r| r.len() == record_size),
            "all records must have equal size"
        );
        let len = records.len();
        let mut data = Vec::with_capacity(len * record_size);
        for r in &records {
            data.extend_from_slice(r);
        }
        Self {
            data: data.into(),
            record_size,
            len,
        }
    }

    /// Builds a database of single-bit records from a bit vector.
    pub fn from_bits(bits: &[bool]) -> Self {
        Self::new(bits.iter().map(|&b| vec![u8::from(b)]).collect())
    }

    /// Builds a database by filling `n` records of `record_size` bytes in
    /// place. This is the at-scale constructor: one flat allocation
    /// instead of `n` intermediate `Vec`s, which dominate [`Self::new`]
    /// at n = 10^7.
    pub fn from_fn(n: usize, record_size: usize, mut fill: impl FnMut(usize, &mut [u8])) -> Self {
        let mut data = vec![0u8; n * record_size];
        if record_size > 0 {
            for (i, rec) in data.chunks_exact_mut(record_size).enumerate() {
                fill(i, rec);
            }
        }
        Self {
            data: data.into(),
            record_size,
            len: n,
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size of each record in bytes.
    pub fn record_size(&self) -> usize {
        self.record_size
    }

    /// Record `i`.
    pub fn record(&self, i: usize) -> &[u8] {
        assert!(i < self.len, "record index out of range");
        &self.data[i * self.record_size..(i + 1) * self.record_size]
    }

    /// XOR of the records selected by the packed `mask` (one bit per
    /// record). Selected records are found 64 at a time via the mask's
    /// set-bit iterator and folded 8 bytes per step into a word-wide
    /// accumulator. Common power-of-two record sizes dispatch to a
    /// monomorphized fold whose accumulator is a fixed-size array the
    /// optimiser keeps in registers across the whole scan.
    pub fn xor_selected(&self, mask: &BitVec) -> Vec<u8> {
        assert_eq!(mask.len(), self.len, "mask arity mismatch");
        // Every path below sweeps the whole packed mask exactly once; the
        // caller tallies that sweep into `pir.words_scanned` (batched per
        // retrieval — this inner scan is too hot for a per-call write).
        let rs = self.record_size;
        let acc = match rs {
            8 => Some(fold_words::<1>(&self.data, mask).to_vec()),
            16 => Some(fold_words::<2>(&self.data, mask).to_vec()),
            32 => Some(fold_words::<4>(&self.data, mask).to_vec()),
            64 => Some(fold_words::<8>(&self.data, mask).to_vec()),
            _ => None,
        };
        if let Some(acc) = acc {
            let mut out = Vec::with_capacity(rs);
            for a in acc {
                out.extend_from_slice(&a.to_ne_bytes());
            }
            return out;
        }
        let body = rs / 8; // whole words per record
        let mut acc64 = vec![0u64; body];
        let mut tail = vec![0u8; rs % 8];
        for i in mask.ones() {
            let rec = &self.data[i * rs..(i + 1) * rs];
            for (a, chunk) in acc64.iter_mut().zip(rec.chunks_exact(8)) {
                *a ^= u64::from_ne_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            for (t, b) in tail.iter_mut().zip(&rec[body * 8..]) {
                *t ^= b;
            }
        }
        let mut out = Vec::with_capacity(rs);
        for a in acc64 {
            out.extend_from_slice(&a.to_ne_bytes());
        }
        out.extend_from_slice(&tail);
        out
    }

    /// [`Self::xor_selected`] over two parallel tables — this one and a
    /// `tags` table of 8-byte records — in a **single sweep** of the
    /// mask. Decoding the packed mask's set bits costs about as much as
    /// XOR-folding a small record, so answering payloads and checksums
    /// in separate sweeps would nearly double the scan; the fused fold
    /// pays the decode once. Used by the redundant (verified) protocol.
    pub fn xor_selected_joint(&self, tags: &Database, mask: &BitVec) -> (Vec<u8>, Vec<u8>) {
        assert_eq!(mask.len(), self.len, "mask arity mismatch");
        assert_eq!(tags.len, self.len, "tag table arity mismatch");
        assert_eq!(tags.record_size, 8, "tags are one word per record");
        let rs = self.record_size;
        fn widen<const W: usize>((acc, tag): ([u64; W], u64)) -> (Vec<u64>, u64) {
            (acc.to_vec(), tag)
        }
        let folded = match rs {
            8 => Some(widen(fold_words_joint::<1>(&self.data, &tags.data, mask))),
            16 => Some(widen(fold_words_joint::<2>(&self.data, &tags.data, mask))),
            32 => Some(widen(fold_words_joint::<4>(&self.data, &tags.data, mask))),
            64 => Some(widen(fold_words_joint::<8>(&self.data, &tags.data, mask))),
            _ => None,
        };
        if let Some((acc, tag)) = folded {
            let mut out = Vec::with_capacity(rs);
            for a in acc {
                out.extend_from_slice(&a.to_ne_bytes());
            }
            return (out, tag.to_ne_bytes().to_vec());
        }
        let body = rs / 8; // whole words per record
        let mut acc64 = vec![0u64; body];
        let mut tail = vec![0u8; rs % 8];
        let mut tag = 0u64;
        for i in mask.ones() {
            let rec = &self.data[i * rs..(i + 1) * rs];
            for (a, chunk) in acc64.iter_mut().zip(rec.chunks_exact(8)) {
                *a ^= u64::from_ne_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            for (t, b) in tail.iter_mut().zip(&rec[body * 8..]) {
                *t ^= b;
            }
            tag ^= tag_word(&tags.data, i);
        }
        let mut out = Vec::with_capacity(rs);
        for a in acc64 {
            out.extend_from_slice(&a.to_ne_bytes());
        }
        out.extend_from_slice(&tail);
        (out, tag.to_ne_bytes().to_vec())
    }

    /// XOR-folds `q` packed selection masks in a **single fused sweep**
    /// of the record data: element `l` of the result equals
    /// `xor_selected(masks[l])`, but every 64-record data window is
    /// visited once for the whole batch while it is cache-hot, instead
    /// of streaming the full array once per query. This generalizes
    /// [`Self::xor_selected_joint`] from 2 lanes to `q` lanes. The sweep
    /// is chunked on mask-word boundaries through the persistent
    /// `tdf-par` executor; XOR merging is exact, so the result is
    /// bit-identical at any thread count.
    pub fn xor_selected_batch(&self, masks: &[&BitVec]) -> Vec<Vec<u8>> {
        for (lane, m) in masks.iter().enumerate() {
            assert_eq!(
                m.len(),
                self.len,
                "batch mask arity mismatch: lane {lane} has {} bits, database has {} records",
                m.len(),
                self.len
            );
        }
        if masks.is_empty() {
            return Vec::new();
        }
        match self.record_size {
            8 => self.batch_words::<1>(masks),
            16 => self.batch_words::<2>(masks),
            32 => self.batch_words::<4>(masks),
            64 => self.batch_words::<8>(masks),
            _ => self.batch_generic(masks),
        }
    }

    /// Monomorphized fused sweep for records of exactly `W * 8` bytes.
    fn batch_words<const W: usize>(&self, masks: &[&BitVec]) -> Vec<Vec<u8>> {
        let folded = par::par_index_reduce(
            words_for(self.len),
            0,
            |range| batch_fold_words::<W>(&self.data, masks, range),
            |mut a, b| {
                for (la, lb) in a.iter_mut().zip(&b) {
                    for (x, y) in la.iter_mut().zip(lb) {
                        *x ^= y;
                    }
                }
                a
            },
        )
        .unwrap_or_else(|| vec![[0u64; W]; masks.len()]);
        folded
            .into_iter()
            .map(|acc| {
                let mut out = Vec::with_capacity(W * 8);
                for a in acc {
                    out.extend_from_slice(&a.to_ne_bytes());
                }
                out
            })
            .collect()
    }

    /// Fused sweep for arbitrary record sizes: per-lane accumulators are
    /// a word-wide body plus a byte tail, as in [`Self::xor_selected`].
    fn batch_generic(&self, masks: &[&BitVec]) -> Vec<Vec<u8>> {
        let rs = self.record_size;
        let body = rs / 8;
        let tail_len = rs % 8;
        let lanes = masks.len();
        let zero = || vec![(vec![0u64; body], vec![0u8; tail_len]); lanes];
        let folded = par::par_index_reduce(
            words_for(self.len),
            0,
            |range| {
                let mut acc = zero();
                for w in range {
                    let base = w * 64;
                    for (lane, mask) in masks.iter().enumerate() {
                        let mut bits = mask.words()[w];
                        let (acc64, tail) = &mut acc[lane];
                        while bits != 0 {
                            let i = base + bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            let rec = &self.data[i * rs..(i + 1) * rs];
                            for (a, chunk) in acc64.iter_mut().zip(rec.chunks_exact(8)) {
                                *a ^= u64::from_ne_bytes(chunk.try_into().expect("8-byte chunk"));
                            }
                            for (t, b) in tail.iter_mut().zip(&rec[body * 8..]) {
                                *t ^= b;
                            }
                        }
                    }
                }
                acc
            },
            |mut a, b| {
                for ((a64, at), (b64, bt)) in a.iter_mut().zip(&b) {
                    for (x, y) in a64.iter_mut().zip(b64) {
                        *x ^= y;
                    }
                    for (x, y) in at.iter_mut().zip(bt) {
                        *x ^= y;
                    }
                }
                a
            },
        )
        .unwrap_or_else(zero);
        folded
            .into_iter()
            .map(|(acc64, tail)| {
                let mut out = Vec::with_capacity(rs);
                for a in acc64 {
                    out.extend_from_slice(&a.to_ne_bytes());
                }
                out.extend_from_slice(&tail);
                out
            })
            .collect()
    }

    /// XOR of the records at `indices` — the o(n) online path of the
    /// hint scheme (`crate::hints`): the server touches only the listed
    /// records instead of sweeping a packed n-bit mask.
    pub fn xor_indices(&self, indices: &[usize]) -> Vec<u8> {
        let mut acc = vec![0u8; self.record_size];
        for &i in indices {
            assert!(
                i < self.len,
                "record index {i} out of range: database has {} records",
                self.len
            );
            for (a, b) in acc.iter_mut().zip(self.record(i)) {
                *a ^= b;
            }
        }
        acc
    }

    /// `Vec<bool>` reference implementation of [`Self::xor_selected`] —
    /// the pre-packing scan, kept for property tests and benchmarks.
    pub fn xor_selected_bools(&self, mask: &[bool]) -> Vec<u8> {
        assert_eq!(mask.len(), self.len, "mask arity mismatch");
        let mut acc = vec![0u8; self.record_size];
        for (i, &selected) in mask.iter().enumerate() {
            if selected {
                for (a, b) in acc.iter_mut().zip(self.record(i)) {
                    *a ^= b;
                }
            }
        }
        acc
    }
}

/// XOR-folds the records selected by `mask` for a record size of exactly
/// `W * 8` bytes. The `W`-word accumulator is a fixed-size array, so the
/// hot loop keeps it in registers instead of round-tripping a heap
/// buffer on every selected record.
fn fold_words<const W: usize>(data: &[u8], mask: &BitVec) -> [u64; W] {
    let rs = W * 8;
    debug_assert_eq!(
        data.len(),
        mask.len() * rs,
        "sweep length mismatch: data holds {} bytes but the mask selects {} records of {rs} bytes",
        data.len(),
        mask.len()
    );
    let mut acc = [0u64; W];
    for i in mask.ones() {
        let rec = &data[i * rs..(i + 1) * rs];
        for (a, chunk) in acc.iter_mut().zip(rec.chunks_exact(8)) {
            *a ^= u64::from_ne_bytes(chunk.try_into().expect("8-byte chunk"));
        }
    }
    acc
}

/// The `i`-th 8-byte record of a tag table, as one word.
fn tag_word(tags: &[u8], i: usize) -> u64 {
    u64::from_ne_bytes(tags[i * 8..(i + 1) * 8].try_into().expect("8-byte tag"))
}

/// [`fold_words`] fused with a parallel 8-byte-per-record tag table: one
/// mask decode feeds both accumulators.
fn fold_words_joint<const W: usize>(data: &[u8], tags: &[u8], mask: &BitVec) -> ([u64; W], u64) {
    let rs = W * 8;
    debug_assert_eq!(
        data.len(),
        mask.len() * rs,
        "joint-sweep length mismatch: data holds {} bytes but the mask selects {} records of {rs} bytes",
        data.len(),
        mask.len()
    );
    debug_assert_eq!(
        tags.len(),
        mask.len() * 8,
        "joint-sweep length mismatch: tag table holds {} bytes but the mask selects {} 8-byte tags",
        tags.len(),
        mask.len()
    );
    let mut acc = [0u64; W];
    let mut tag = 0u64;
    for i in mask.ones() {
        let rec = &data[i * rs..(i + 1) * rs];
        for (a, chunk) in acc.iter_mut().zip(rec.chunks_exact(8)) {
            *a ^= u64::from_ne_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        tag ^= tag_word(tags, i);
    }
    (acc, tag)
}

/// One chunk of the fused multi-lane sweep for records of exactly
/// `W * 8` bytes: for every mask word in `range`, the ≤ 64-record data
/// window is folded into each lane's accumulator while it is
/// L1-resident. The per-lane accumulators are fixed-size `[u64; W]`
/// arrays, so the inner XOR unrolls into register operations and never
/// round-trips a heap buffer.
fn batch_fold_words<const W: usize>(
    data: &[u8],
    masks: &[&BitVec],
    range: Range<usize>,
) -> Vec<[u64; W]> {
    let rs = W * 8;
    for m in masks {
        debug_assert_eq!(
            data.len(),
            m.len() * rs,
            "batch-sweep length mismatch: data holds {} bytes but a lane mask selects {} records of {rs} bytes",
            data.len(),
            m.len()
        );
    }
    let mut acc = vec![[0u64; W]; masks.len()];
    for w in range {
        let base = w * 64;
        for (lane, mask) in masks.iter().enumerate() {
            let mut bits = mask.words()[w];
            let a = &mut acc[lane];
            while bits != 0 {
                let i = base + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let rec = &data[i * rs..(i + 1) * rs];
                for (x, chunk) in a.iter_mut().zip(rec.chunks_exact(8)) {
                    *x ^= u64::from_ne_bytes(chunk.try_into().expect("8-byte chunk"));
                }
            }
        }
    }
    acc
}

/// What one server observed during a retrieval: the raw query message it
/// received. For information-theoretically private schemes this message is
/// statistically independent of the retrieved index; `tdf-core::scoring`
/// verifies that empirically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerView {
    /// The server saw a plaintext index (no user privacy).
    PlainIndex(usize),
    /// The server saw a packed selection bit-vector (XOR schemes).
    Mask(BitVec),
    /// The server saw a row-selector plus which of its own axes was used
    /// (square scheme).
    SquareMask {
        /// Row-selection vector.
        rows: BitVec,
    },
    /// The server saw ciphertexts only (computational PIR).
    Ciphertexts(usize),
    /// The server saw a full-download request (trivial PIR).
    FullDownload,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngkit::SeedableRng;

    #[test]
    fn construction_and_access() {
        let db = Database::new(vec![vec![1, 2], vec![3, 4], vec![5, 6]]);
        assert_eq!(db.len(), 3);
        assert_eq!(db.record_size(), 2);
        assert_eq!(db.record(1), &[3, 4]);
        assert!(!db.is_empty());
    }

    #[test]
    #[should_panic(expected = "equal size")]
    fn ragged_records_panic() {
        let _ = Database::new(vec![vec![1], vec![2, 3]]);
    }

    #[test]
    fn joint_scan_agrees_with_two_separate_scans() {
        // Exercises both the monomorphized (8/16/32/64-byte) and the
        // generic (odd-size, incl. sub-word tail) payload paths.
        for rs in [1usize, 3, 8, 16, 20, 32, 64, 70] {
            for n in [1usize, 5, 64, 131] {
                let payloads =
                    Database::new((0..n).map(|i| vec![(i * 7 + rs) as u8; rs]).collect());
                let tags = Database::new(
                    (0..n)
                        .map(|i| ((i * 0x9E37 + 1) as u64).to_ne_bytes().to_vec())
                        .collect(),
                );
                let bools: Vec<bool> = (0..n).map(|i| i % 3 != 1).collect();
                let mask = BitVec::from_bools(&bools);
                let (joint_p, joint_t) = payloads.xor_selected_joint(&tags, &mask);
                assert_eq!(joint_p, payloads.xor_selected(&mask), "rs={rs} n={n}");
                assert_eq!(joint_t, tags.xor_selected(&mask), "rs={rs} n={n}");
            }
        }
    }

    #[test]
    fn xor_selected_matches_manual() {
        let db = Database::new(vec![vec![0b1100], vec![0b1010], vec![0b0001]]);
        let x = db.xor_selected(&BitVec::from_bools(&[true, true, false]));
        assert_eq!(x, vec![0b0110]);
        let all = db.xor_selected(&BitVec::from_bools(&[true, true, true]));
        assert_eq!(all, vec![0b0111]);
        let none = db.xor_selected(&BitVec::from_bools(&[false, false, false]));
        assert_eq!(none, vec![0]);
    }

    #[test]
    fn packed_and_bool_scans_agree() {
        // 9-byte records exercise both the word-wide accumulator and the
        // byte tail; 70 records exercise a mask spanning two words.
        let db = Database::new(
            (0..70u8)
                .map(|i| (0..9).map(|j| i.wrapping_mul(31).wrapping_add(j)).collect())
                .collect(),
        );
        let bools: Vec<bool> = (0..70).map(|i| i % 3 != 1).collect();
        let packed = BitVec::from_bools(&bools);
        assert_eq!(db.xor_selected(&packed), db.xor_selected_bools(&bools));
    }

    #[test]
    fn batch_sweep_agrees_with_per_query_sweeps() {
        // Monomorphized (8/16/32/64) and generic (odd-size) lanes, with
        // masks spanning multiple words, across 1..9 lanes.
        let mut rng = rngkit::rngs::StdRng::seed_from_u64(41);
        for rs in [1usize, 8, 9, 16, 32, 64, 70] {
            let n = 131;
            let db = Database::from_fn(n, rs, |i, rec| {
                for (j, b) in rec.iter_mut().enumerate() {
                    *b = (i * 31 + j * 7 + rs) as u8;
                }
            });
            for q in [1usize, 2, 5, 9] {
                let masks: Vec<BitVec> = (0..q).map(|_| BitVec::random(&mut rng, n)).collect();
                let refs: Vec<&BitVec> = masks.iter().collect();
                let fused = db.xor_selected_batch(&refs);
                let sequential: Vec<Vec<u8>> = masks.iter().map(|m| db.xor_selected(m)).collect();
                assert_eq!(fused, sequential, "rs={rs} q={q}");
            }
        }
    }

    #[test]
    fn batch_sweep_is_identical_across_thread_counts() {
        // Large enough that the word sweep clears the sequential
        // threshold and actually fans out.
        let n = 70_000;
        let db = Database::from_fn(n, 32, |i, rec| {
            for (j, b) in rec.iter_mut().enumerate() {
                *b = (i * 13 + j) as u8;
            }
        });
        let mut rng = rngkit::rngs::StdRng::seed_from_u64(42);
        let masks: Vec<BitVec> = (0..4).map(|_| BitVec::random(&mut rng, n)).collect();
        let refs: Vec<&BitVec> = masks.iter().collect();
        let t1 = par::with_threads(1, || db.xor_selected_batch(&refs));
        let t4 = par::with_threads(4, || db.xor_selected_batch(&refs));
        assert_eq!(t1, t4);
        let sequential: Vec<Vec<u8>> = masks.iter().map(|m| db.xor_selected(m)).collect();
        assert_eq!(t1, sequential);
    }

    #[test]
    fn empty_batch_is_empty() {
        let db = Database::new(vec![vec![1u8; 8]; 4]);
        assert_eq!(db.xor_selected_batch(&[]), Vec::<Vec<u8>>::new());
    }

    #[test]
    #[should_panic(expected = "lane 1 has 3 bits, database has 4 records")]
    fn batch_mask_mismatch_names_lane_and_lengths() {
        let db = Database::new(vec![vec![1u8; 8]; 4]);
        let good = BitVec::zeros(4);
        let bad = BitVec::zeros(3);
        let _ = db.xor_selected_batch(&[&good, &bad]);
    }

    #[test]
    fn from_fn_matches_new() {
        let records: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i, i * 3, i ^ 0x5A]).collect();
        let a = Database::new(records.clone());
        let b = Database::from_fn(10, 3, |i, rec| rec.copy_from_slice(&records[i]));
        assert_eq!(a, b);
        let empty = Database::from_fn(5, 0, |_, _| unreachable!("no bytes to fill"));
        assert_eq!(empty.len(), 5);
        assert_eq!(empty.record_size(), 0);
    }

    #[test]
    fn xor_indices_matches_selected() {
        let db = Database::new((0..20u8).map(|i| vec![i, i.wrapping_mul(17), 9]).collect());
        let indices = [1usize, 4, 4, 19];
        let mut bools = vec![false; 20];
        // 4 appears twice, cancelling itself: expect XOR of {1, 19}.
        bools[1] = true;
        bools[19] = true;
        assert_eq!(db.xor_indices(&indices), db.xor_selected_bools(&bools));
        assert_eq!(db.xor_indices(&[]), vec![0u8; 3]);
    }

    #[test]
    #[should_panic(expected = "record index 20 out of range: database has 20 records")]
    fn xor_indices_out_of_range_names_both() {
        let db = Database::new((0..20u8).map(|i| vec![i]).collect());
        let _ = db.xor_indices(&[20]);
    }

    #[test]
    fn clone_shares_payload() {
        let db = Database::new(vec![vec![7u8; 16]; 8]);
        let db2 = db.clone();
        assert!(std::ptr::eq(db.record(0).as_ptr(), db2.record(0).as_ptr()));
    }

    #[test]
    fn from_bits() {
        let db = Database::from_bits(&[true, false, true]);
        assert_eq!(db.record(0), &[1]);
        assert_eq!(db.record(1), &[0]);
        assert_eq!(db.record_size(), 1);
    }
}
