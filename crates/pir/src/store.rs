//! The database model shared by all PIR schemes, plus the server *view* —
//! everything a (curious) server observes during a retrieval, from which
//! `tdf-core` computes empirical query leakage.

use crate::bits::BitVec;
use std::sync::Arc;

/// A database of `n` fixed-size records stored contiguously.
///
/// Records live back to back in one `Arc<[u8]>` so that cloning the
/// database (the PIR pipelines replicate it once per server) shares a
/// single allocation, and the XOR-folding hot loop walks a flat buffer
/// instead of chasing one pointer per record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Database {
    data: Arc<[u8]>,
    record_size: usize,
    len: usize,
}

impl Database {
    /// Builds a database from equally-sized records.
    pub fn new(records: Vec<Vec<u8>>) -> Self {
        let record_size = records.first().map_or(0, Vec::len);
        assert!(
            records.iter().all(|r| r.len() == record_size),
            "all records must have equal size"
        );
        let len = records.len();
        let mut data = Vec::with_capacity(len * record_size);
        for r in &records {
            data.extend_from_slice(r);
        }
        Self {
            data: data.into(),
            record_size,
            len,
        }
    }

    /// Builds a database of single-bit records from a bit vector.
    pub fn from_bits(bits: &[bool]) -> Self {
        Self::new(bits.iter().map(|&b| vec![u8::from(b)]).collect())
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size of each record in bytes.
    pub fn record_size(&self) -> usize {
        self.record_size
    }

    /// Record `i`.
    pub fn record(&self, i: usize) -> &[u8] {
        assert!(i < self.len, "record index out of range");
        &self.data[i * self.record_size..(i + 1) * self.record_size]
    }

    /// XOR of the records selected by the packed `mask` (one bit per
    /// record). Selected records are found 64 at a time via the mask's
    /// set-bit iterator and folded 8 bytes per step into a word-wide
    /// accumulator. Common power-of-two record sizes dispatch to a
    /// monomorphized fold whose accumulator is a fixed-size array the
    /// optimiser keeps in registers across the whole scan.
    pub fn xor_selected(&self, mask: &BitVec) -> Vec<u8> {
        assert_eq!(mask.len(), self.len, "mask arity mismatch");
        // Every path below sweeps the whole packed mask exactly once; the
        // caller tallies that sweep into `pir.words_scanned` (batched per
        // retrieval — this inner scan is too hot for a per-call write).
        let rs = self.record_size;
        let acc = match rs {
            8 => Some(fold_words::<1>(&self.data, mask).to_vec()),
            16 => Some(fold_words::<2>(&self.data, mask).to_vec()),
            32 => Some(fold_words::<4>(&self.data, mask).to_vec()),
            64 => Some(fold_words::<8>(&self.data, mask).to_vec()),
            _ => None,
        };
        if let Some(acc) = acc {
            let mut out = Vec::with_capacity(rs);
            for a in acc {
                out.extend_from_slice(&a.to_ne_bytes());
            }
            return out;
        }
        let body = rs / 8; // whole words per record
        let mut acc64 = vec![0u64; body];
        let mut tail = vec![0u8; rs % 8];
        for i in mask.ones() {
            let rec = &self.data[i * rs..(i + 1) * rs];
            for (a, chunk) in acc64.iter_mut().zip(rec.chunks_exact(8)) {
                *a ^= u64::from_ne_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            for (t, b) in tail.iter_mut().zip(&rec[body * 8..]) {
                *t ^= b;
            }
        }
        let mut out = Vec::with_capacity(rs);
        for a in acc64 {
            out.extend_from_slice(&a.to_ne_bytes());
        }
        out.extend_from_slice(&tail);
        out
    }

    /// [`Self::xor_selected`] over two parallel tables — this one and a
    /// `tags` table of 8-byte records — in a **single sweep** of the
    /// mask. Decoding the packed mask's set bits costs about as much as
    /// XOR-folding a small record, so answering payloads and checksums
    /// in separate sweeps would nearly double the scan; the fused fold
    /// pays the decode once. Used by the redundant (verified) protocol.
    pub fn xor_selected_joint(&self, tags: &Database, mask: &BitVec) -> (Vec<u8>, Vec<u8>) {
        assert_eq!(mask.len(), self.len, "mask arity mismatch");
        assert_eq!(tags.len, self.len, "tag table arity mismatch");
        assert_eq!(tags.record_size, 8, "tags are one word per record");
        let rs = self.record_size;
        fn widen<const W: usize>((acc, tag): ([u64; W], u64)) -> (Vec<u64>, u64) {
            (acc.to_vec(), tag)
        }
        let folded = match rs {
            8 => Some(widen(fold_words_joint::<1>(&self.data, &tags.data, mask))),
            16 => Some(widen(fold_words_joint::<2>(&self.data, &tags.data, mask))),
            32 => Some(widen(fold_words_joint::<4>(&self.data, &tags.data, mask))),
            64 => Some(widen(fold_words_joint::<8>(&self.data, &tags.data, mask))),
            _ => None,
        };
        if let Some((acc, tag)) = folded {
            let mut out = Vec::with_capacity(rs);
            for a in acc {
                out.extend_from_slice(&a.to_ne_bytes());
            }
            return (out, tag.to_ne_bytes().to_vec());
        }
        let body = rs / 8; // whole words per record
        let mut acc64 = vec![0u64; body];
        let mut tail = vec![0u8; rs % 8];
        let mut tag = 0u64;
        for i in mask.ones() {
            let rec = &self.data[i * rs..(i + 1) * rs];
            for (a, chunk) in acc64.iter_mut().zip(rec.chunks_exact(8)) {
                *a ^= u64::from_ne_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            for (t, b) in tail.iter_mut().zip(&rec[body * 8..]) {
                *t ^= b;
            }
            tag ^= tag_word(&tags.data, i);
        }
        let mut out = Vec::with_capacity(rs);
        for a in acc64 {
            out.extend_from_slice(&a.to_ne_bytes());
        }
        out.extend_from_slice(&tail);
        (out, tag.to_ne_bytes().to_vec())
    }

    /// `Vec<bool>` reference implementation of [`Self::xor_selected`] —
    /// the pre-packing scan, kept for property tests and benchmarks.
    pub fn xor_selected_bools(&self, mask: &[bool]) -> Vec<u8> {
        assert_eq!(mask.len(), self.len, "mask arity mismatch");
        let mut acc = vec![0u8; self.record_size];
        for (i, &selected) in mask.iter().enumerate() {
            if selected {
                for (a, b) in acc.iter_mut().zip(self.record(i)) {
                    *a ^= b;
                }
            }
        }
        acc
    }
}

/// XOR-folds the records selected by `mask` for a record size of exactly
/// `W * 8` bytes. The `W`-word accumulator is a fixed-size array, so the
/// hot loop keeps it in registers instead of round-tripping a heap
/// buffer on every selected record.
fn fold_words<const W: usize>(data: &[u8], mask: &BitVec) -> [u64; W] {
    let rs = W * 8;
    let mut acc = [0u64; W];
    for i in mask.ones() {
        let rec = &data[i * rs..(i + 1) * rs];
        for (a, chunk) in acc.iter_mut().zip(rec.chunks_exact(8)) {
            *a ^= u64::from_ne_bytes(chunk.try_into().expect("8-byte chunk"));
        }
    }
    acc
}

/// The `i`-th 8-byte record of a tag table, as one word.
fn tag_word(tags: &[u8], i: usize) -> u64 {
    u64::from_ne_bytes(tags[i * 8..(i + 1) * 8].try_into().expect("8-byte tag"))
}

/// [`fold_words`] fused with a parallel 8-byte-per-record tag table: one
/// mask decode feeds both accumulators.
fn fold_words_joint<const W: usize>(data: &[u8], tags: &[u8], mask: &BitVec) -> ([u64; W], u64) {
    let rs = W * 8;
    let mut acc = [0u64; W];
    let mut tag = 0u64;
    for i in mask.ones() {
        let rec = &data[i * rs..(i + 1) * rs];
        for (a, chunk) in acc.iter_mut().zip(rec.chunks_exact(8)) {
            *a ^= u64::from_ne_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        tag ^= tag_word(tags, i);
    }
    (acc, tag)
}

/// What one server observed during a retrieval: the raw query message it
/// received. For information-theoretically private schemes this message is
/// statistically independent of the retrieved index; `tdf-core::scoring`
/// verifies that empirically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerView {
    /// The server saw a plaintext index (no user privacy).
    PlainIndex(usize),
    /// The server saw a packed selection bit-vector (XOR schemes).
    Mask(BitVec),
    /// The server saw a row-selector plus which of its own axes was used
    /// (square scheme).
    SquareMask {
        /// Row-selection vector.
        rows: BitVec,
    },
    /// The server saw ciphertexts only (computational PIR).
    Ciphertexts(usize),
    /// The server saw a full-download request (trivial PIR).
    FullDownload,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let db = Database::new(vec![vec![1, 2], vec![3, 4], vec![5, 6]]);
        assert_eq!(db.len(), 3);
        assert_eq!(db.record_size(), 2);
        assert_eq!(db.record(1), &[3, 4]);
        assert!(!db.is_empty());
    }

    #[test]
    #[should_panic(expected = "equal size")]
    fn ragged_records_panic() {
        let _ = Database::new(vec![vec![1], vec![2, 3]]);
    }

    #[test]
    fn joint_scan_agrees_with_two_separate_scans() {
        // Exercises both the monomorphized (8/16/32/64-byte) and the
        // generic (odd-size, incl. sub-word tail) payload paths.
        for rs in [1usize, 3, 8, 16, 20, 32, 64, 70] {
            for n in [1usize, 5, 64, 131] {
                let payloads =
                    Database::new((0..n).map(|i| vec![(i * 7 + rs) as u8; rs]).collect());
                let tags = Database::new(
                    (0..n)
                        .map(|i| ((i * 0x9E37 + 1) as u64).to_ne_bytes().to_vec())
                        .collect(),
                );
                let bools: Vec<bool> = (0..n).map(|i| i % 3 != 1).collect();
                let mask = BitVec::from_bools(&bools);
                let (joint_p, joint_t) = payloads.xor_selected_joint(&tags, &mask);
                assert_eq!(joint_p, payloads.xor_selected(&mask), "rs={rs} n={n}");
                assert_eq!(joint_t, tags.xor_selected(&mask), "rs={rs} n={n}");
            }
        }
    }

    #[test]
    fn xor_selected_matches_manual() {
        let db = Database::new(vec![vec![0b1100], vec![0b1010], vec![0b0001]]);
        let x = db.xor_selected(&BitVec::from_bools(&[true, true, false]));
        assert_eq!(x, vec![0b0110]);
        let all = db.xor_selected(&BitVec::from_bools(&[true, true, true]));
        assert_eq!(all, vec![0b0111]);
        let none = db.xor_selected(&BitVec::from_bools(&[false, false, false]));
        assert_eq!(none, vec![0]);
    }

    #[test]
    fn packed_and_bool_scans_agree() {
        // 9-byte records exercise both the word-wide accumulator and the
        // byte tail; 70 records exercise a mask spanning two words.
        let db = Database::new(
            (0..70u8)
                .map(|i| (0..9).map(|j| i.wrapping_mul(31).wrapping_add(j)).collect())
                .collect(),
        );
        let bools: Vec<bool> = (0..70).map(|i| i % 3 != 1).collect();
        let packed = BitVec::from_bools(&bools);
        assert_eq!(db.xor_selected(&packed), db.xor_selected_bools(&bools));
    }

    #[test]
    fn clone_shares_payload() {
        let db = Database::new(vec![vec![7u8; 16]; 8]);
        let db2 = db.clone();
        assert!(std::ptr::eq(db.record(0).as_ptr(), db2.record(0).as_ptr()));
    }

    #[test]
    fn from_bits() {
        let db = Database::from_bits(&[true, false, true]);
        assert_eq!(db.record(0), &[1]);
        assert_eq!(db.record(1), &[0]);
        assert_eq!(db.record_size(), 1);
    }
}
