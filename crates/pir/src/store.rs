//! The database model shared by all PIR schemes, plus the server *view* —
//! everything a (curious) server observes during a retrieval, from which
//! `tdf-core` computes empirical query leakage.

use std::sync::Arc;

/// A database of `n` fixed-size records.
///
/// Records are stored as `Arc<[u8]>` so that cloning the database (the
/// PIR pipelines replicate it once per server) shares the payload
/// instead of copying it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Database {
    records: Vec<Arc<[u8]>>,
    record_size: usize,
}

impl Database {
    /// Builds a database from equally-sized records.
    pub fn new(records: Vec<Vec<u8>>) -> Self {
        let record_size = records.first().map_or(0, Vec::len);
        assert!(
            records.iter().all(|r| r.len() == record_size),
            "all records must have equal size"
        );
        Self {
            records: records.into_iter().map(Arc::from).collect(),
            record_size,
        }
    }

    /// Builds a database of single-bit records from a bit vector.
    pub fn from_bits(bits: &[bool]) -> Self {
        Self::new(bits.iter().map(|&b| vec![u8::from(b)]).collect())
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Size of each record in bytes.
    pub fn record_size(&self) -> usize {
        self.record_size
    }

    /// Record `i`.
    pub fn record(&self, i: usize) -> &[u8] {
        &self.records[i]
    }

    /// XOR of the records selected by `mask` (one bool per record).
    pub fn xor_selected(&self, mask: &[bool]) -> Vec<u8> {
        assert_eq!(mask.len(), self.len(), "mask arity mismatch");
        let mut acc = vec![0u8; self.record_size];
        for (i, &selected) in mask.iter().enumerate() {
            if selected {
                for (a, b) in acc.iter_mut().zip(self.records[i].iter()) {
                    *a ^= b;
                }
            }
        }
        acc
    }
}

/// What one server observed during a retrieval: the raw query message it
/// received. For information-theoretically private schemes this message is
/// statistically independent of the retrieved index; `tdf-core::scoring`
/// verifies that empirically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerView {
    /// The server saw a plaintext index (no user privacy).
    PlainIndex(usize),
    /// The server saw a selection bit-vector (XOR schemes).
    Mask(Vec<bool>),
    /// The server saw a row-selector plus which of its own axes was used
    /// (square scheme).
    SquareMask {
        /// Row-selection vector.
        rows: Vec<bool>,
    },
    /// The server saw ciphertexts only (computational PIR).
    Ciphertexts(usize),
    /// The server saw a full-download request (trivial PIR).
    FullDownload,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let db = Database::new(vec![vec![1, 2], vec![3, 4], vec![5, 6]]);
        assert_eq!(db.len(), 3);
        assert_eq!(db.record_size(), 2);
        assert_eq!(db.record(1), &[3, 4]);
        assert!(!db.is_empty());
    }

    #[test]
    #[should_panic(expected = "equal size")]
    fn ragged_records_panic() {
        let _ = Database::new(vec![vec![1], vec![2, 3]]);
    }

    #[test]
    fn xor_selected_matches_manual() {
        let db = Database::new(vec![vec![0b1100], vec![0b1010], vec![0b0001]]);
        let x = db.xor_selected(&[true, true, false]);
        assert_eq!(x, vec![0b0110]);
        let all = db.xor_selected(&[true, true, true]);
        assert_eq!(all, vec![0b0111]);
        let none = db.xor_selected(&[false, false, false]);
        assert_eq!(none, vec![0]);
    }

    #[test]
    fn from_bits() {
        let db = Database::from_bits(&[true, false, true]);
        assert_eq!(db.record(0), &[1]);
        assert_eq!(db.record(1), &[0]);
        assert_eq!(db.record_size(), 1);
    }
}
