//! Trivial PIR: download the whole database.
//!
//! Perfectly private (the request carries no information at all) and the
//! communication lower bound every non-trivial scheme is measured against.

use crate::cost::CostReport;
use crate::store::{Database, ServerView};

/// Retrieves record `index` by downloading everything.
///
/// Returns the record, the server's view, and the cost.
pub fn retrieve(db: &Database, index: usize) -> (Vec<u8>, ServerView, CostReport) {
    assert!(index < db.len(), "index out of range");
    let record = db.record(index).to_vec();
    let cost = CostReport {
        uplink_bits: 1,
        downlink_bits: (db.len() * db.record_size() * 8) as u64,
        server_ops: db.len() as u64,
        words_scanned: 0,
        servers: 1,
    };
    (record, ServerView::FullDownload, cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retrieves_correct_record() {
        let db = Database::new(vec![vec![9], vec![8], vec![7]]);
        for i in 0..3 {
            let (rec, view, _) = retrieve(&db, i);
            assert_eq!(rec, db.record(i));
            assert_eq!(view, ServerView::FullDownload);
        }
    }

    #[test]
    fn cost_is_linear() {
        let db = Database::new(vec![vec![0u8; 4]; 100]);
        let (_, _, cost) = retrieve(&db, 5);
        assert_eq!(cost.downlink_bits, 100 * 4 * 8);
    }

    #[test]
    fn view_is_independent_of_index() {
        let db = Database::new(vec![vec![1], vec![2]]);
        let (_, v0, _) = retrieve(&db, 0);
        let (_, v1, _) = retrieve(&db, 1);
        assert_eq!(v0, v1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let db = Database::new(vec![vec![1]]);
        let _ = retrieve(&db, 1);
    }
}
