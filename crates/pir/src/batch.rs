//! Multi-query batching for the two-server linear scheme: fuse `q`
//! pending selection masks into one database sweep.
//!
//! A single CGKS retrieval is memory-bound at scale — each server
//! streams the whole record array to honour one mask. When `q` queries
//! are pending (a server draining its queue, a client with a read set),
//! [`retrieve_batch`] answers all of them in one fused sweep: every
//! 64-record data window is folded into all `q` lanes while it is
//! cache-hot, so the data array crosses the memory bus once per batch
//! instead of once per query (see [`Database::xor_selected_batch`]).
//!
//! The XOR *compute* per lane is information-theoretically irreducible —
//! every server must touch about n/2 records per query regardless of
//! batching — so fusion buys the memory factor, and the offline/online
//! hint split ([`crate::hints`]) buys the o(n) online path. `tdf-serve`
//! composes batching with its admission queue; DESIGN §14 has the
//! analysis.
//!
//! **Determinism.** [`BatchQuery::build`] draws masks per query in
//! submission order, so its RNG stream is identical to building the
//! queries one at a time; a batch of one is bit-identical — records,
//! masks and cost — to [`crate::linear::retrieve`] with `k = 2`.

use crate::bits::BitVec;
use crate::cost::{batch_scan_words, packed_mask_bits, CostReport};
use crate::linear::Query;
use crate::store::Database;
use rngkit::Rng;

/// `q` prepared two-server queries destined for one fused sweep.
#[derive(Debug, Clone)]
pub struct BatchQuery {
    queries: Vec<Query>,
}

impl BatchQuery {
    /// Builds one two-server [`Query`] per index, in submission order.
    pub fn build<R: Rng + ?Sized>(rng: &mut R, n: usize, indices: &[usize]) -> Self {
        Self {
            queries: indices
                .iter()
                .map(|&i| Query::build(rng, n, 2, i))
                .collect(),
        }
    }

    /// Number of fused queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when no queries are queued.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The prepared queries, in submission order.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }
}

/// Outcome of answering one batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Record `l` answers the `l`-th submitted index — bit-identical to
    /// `q` sequential single-query retrievals over the same masks.
    pub records: Vec<Vec<u8>>,
    /// True when the fused sweep was abandoned (fault injection) and
    /// the batch degraded to per-query sweeps; records are still exact.
    pub degraded: bool,
    /// Aggregate cost of the whole batch.
    pub cost: CostReport,
}

/// Answers a prepared batch against both server replicas in one fused
/// sweep per replica.
pub fn answer_batch(db: &Database, batch: &BatchQuery) -> BatchOutcome {
    let q = batch.len();
    if q == 0 {
        return BatchOutcome {
            records: Vec::new(),
            degraded: false,
            cost: CostReport::default(),
        };
    }
    obs::observe("pir.batch_size", q as u64);
    // `pir.batch_drop` models a server rejecting the whole fused sweep
    // (overload shedding, a mid-sweep fault). The degraded path
    // re-answers every query with its own per-query sweep over the
    // *same* masks, so a dropped batch costs throughput — q sweeps
    // instead of one — never correctness.
    let (answers, degraded) = if faultkit::fire("pir.batch_drop") {
        obs::count("pir.batch.drops", 1);
        let per_query: Vec<[Vec<u8>; 2]> = batch
            .queries()
            .iter()
            .map(|qq| [db.xor_selected(qq.share(0)), db.xor_selected(qq.share(1))])
            .collect();
        (per_query, true)
    } else {
        obs::count("pir.batch.sweeps", 1);
        let a: Vec<&BitVec> = batch.queries().iter().map(|qq| qq.share(0)).collect();
        let b: Vec<&BitVec> = batch.queries().iter().map(|qq| qq.share(1)).collect();
        let fused_a = db.xor_selected_batch(&a);
        let fused_b = db.xor_selected_batch(&b);
        (
            fused_a
                .into_iter()
                .zip(fused_b)
                .map(|(x, y)| [x, y])
                .collect(),
            false,
        )
    };
    // Mask decode work is identical on both paths: q masks × 2 servers.
    obs::count("pir.words_scanned", batch_scan_words(q, db.len()));
    let records = answers
        .into_iter()
        .map(|[a, b]| {
            let mut rec = a;
            for (x, y) in rec.iter_mut().zip(&b) {
                *x ^= y;
            }
            rec
        })
        .collect();
    let cost = CostReport {
        uplink_bits: packed_mask_bits(2 * q, db.len()),
        downlink_bits: (2 * q * db.record_size() * 8) as u64,
        server_ops: batch
            .queries()
            .iter()
            .map(|qq| qq.share(0).count_ones() + qq.share(1).count_ones())
            .sum(),
        words_scanned: batch_scan_words(q, db.len()),
        servers: 2,
    };
    BatchOutcome {
        records,
        degraded,
        cost,
    }
}

/// Builds and answers a batch of two-server queries in one call.
/// ```
/// use rngkit::SeedableRng;
/// use tdf_pir::store::Database;
///
/// let db = Database::new((0..100u8).map(|i| vec![i, i ^ 0x3C]).collect());
/// let mut rng = rngkit::rngs::StdRng::seed_from_u64(7);
/// let out = tdf_pir::batch::retrieve_batch(&mut rng, &db, &[3, 97, 41]);
/// assert_eq!(out.records[1], db.record(97));
/// assert!(!out.degraded);
/// ```
pub fn retrieve_batch<R: Rng + ?Sized>(
    rng: &mut R,
    db: &Database,
    indices: &[usize],
) -> BatchOutcome {
    answer_batch(db, &BatchQuery::build(rng, db.len(), indices))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngkit::rngs::StdRng;
    use rngkit::SeedableRng;

    fn db(n: usize, rs: usize) -> Database {
        Database::from_fn(n, rs, |i, rec| {
            for (j, b) in rec.iter_mut().enumerate() {
                *b = (i * 37 + j * 11 + 5) as u8;
            }
        })
    }

    #[test]
    fn batch_retrieves_every_requested_record() {
        let db = db(257, 32);
        let mut rng = StdRng::seed_from_u64(3);
        let indices = [0usize, 1, 63, 64, 128, 256, 77, 77];
        let out = retrieve_batch(&mut rng, &db, &indices);
        assert!(!out.degraded);
        assert_eq!(out.records.len(), indices.len());
        for (l, &i) in indices.iter().enumerate() {
            assert_eq!(out.records[l], db.record(i), "lane {l} index {i}");
        }
        assert_eq!(out.cost.servers, 2);
        assert_eq!(out.cost.words_scanned, batch_scan_words(indices.len(), 257));
    }

    #[test]
    fn batch_of_one_is_bit_identical_to_single_query_path() {
        let db = db(300, 16);
        for index in [0usize, 150, 299] {
            let (single, batched) = {
                let mut r1 = StdRng::seed_from_u64(99);
                let mut r2 = StdRng::seed_from_u64(99);
                (
                    crate::linear::retrieve(&mut r1, &db, 2, index),
                    retrieve_batch(&mut r2, &db, &[index]),
                )
            };
            let (record, _, cost) = single;
            assert_eq!(batched.records, vec![record], "index {index}");
            assert_eq!(batched.cost, cost, "index {index}");
        }
    }

    #[test]
    fn empty_batch_costs_nothing() {
        let db = db(64, 8);
        let mut rng = StdRng::seed_from_u64(1);
        let out = retrieve_batch(&mut rng, &db, &[]);
        assert!(out.records.is_empty());
        assert_eq!(out.cost, CostReport::default());
    }

    #[test]
    fn batch_is_identical_across_thread_counts() {
        let db = db(70_000, 32);
        let indices: Vec<usize> = (0..6).map(|t| t * 11_117).collect();
        let run = |threads: usize| {
            par::with_threads(threads, || {
                let mut rng = StdRng::seed_from_u64(17);
                retrieve_batch(&mut rng, &db, &indices)
            })
        };
        assert_eq!(run(1), run(4));
    }
}
