//! Word-packed selection vectors for the XOR-based PIR schemes.
//!
//! The multi-server schemes spend their whole server-side budget folding
//! records selected by a bit mask. A `Vec<bool>` stores one selection per
//! byte and forces a branch per record; [`BitVec`] packs 64 selections per
//! `u64`, so mask generation draws one RNG word per 64 bits, mask XOR is a
//! word-wide operation, and servers skip unselected runs 64 records at a
//! time via `trailing_zeros`. Cost accounting reports masks at their packed
//! size (see `cost::packed_mask_bits`).
//!
//! Invariant: bits at positions `>= len` in the last word are always zero,
//! so `count_ones`/equality/XOR never see garbage tail bits.

use rngkit::Rng;

/// Number of 64-bit words needed to hold `len` bits.
pub fn words_for(len: usize) -> usize {
    len.div_ceil(64)
}

/// A fixed-length bit vector packed into `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// An all-zeros vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0u64; words_for(len)],
            len,
        }
    }

    /// A uniformly random vector of `len` bits (one RNG word per 64 bits).
    pub fn random<R: Rng + ?Sized>(rng: &mut R, len: usize) -> Self {
        let mut words: Vec<u64> = (0..words_for(len)).map(|_| rng.next_u64()).collect();
        mask_tail(&mut words, len);
        Self { words, len }
    }

    /// Packs a `bool` slice.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut v = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                v.words[i / 64] |= 1u64 << (i % 64);
            }
        }
        v
    }

    /// Unpacks into one `bool` per bit.
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when `len() == 0`.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit `i`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Flips bit `i`.
    pub fn flip(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] ^= 1u64 << (i % 64);
    }

    /// Word-wide XOR with an equal-length vector.
    pub fn xor_assign(&mut self, other: &BitVec) {
        assert_eq!(
            self.len,
            other.len,
            "bit-vector length mismatch: self has {} bits ({} words), other has {} bits ({} words)",
            self.len,
            self.words.len(),
            other.len,
            other.words.len()
        );
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// Iterates over the indices of set bits in increasing order.
    pub fn ones(&self) -> Ones<'_> {
        Ones {
            words: &self.words,
            word: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// The packed words (tail bits beyond `len` are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Appends the bits of `other` to `self`.
    pub fn extend_from(&mut self, other: &BitVec) {
        self.words.resize(words_for(self.len + other.len), 0);
        for i in other.ones() {
            let pos = self.len + i;
            self.words[pos / 64] |= 1u64 << (pos % 64);
        }
        self.len += other.len;
    }
}

/// Zeroes the bits at positions `>= len` in the last word.
fn mask_tail(words: &mut [u64], len: usize) {
    let tail = len % 64;
    if tail != 0 {
        if let Some(last) = words.last_mut() {
            *last &= (1u64 << tail) - 1;
        }
    }
}

/// Iterator over set-bit indices, word at a time via `trailing_zeros`.
pub struct Ones<'a> {
    words: &'a [u64],
    word: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word += 1;
            if self.word >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word * 64 + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngkit::SeedableRng;

    #[test]
    fn set_get_flip_roundtrip() {
        let mut v = BitVec::zeros(130);
        assert_eq!(v.len(), 130);
        assert!(!v.get(129));
        v.set(129, true);
        v.set(0, true);
        v.set(64, true);
        assert!(v.get(129) && v.get(0) && v.get(64));
        assert_eq!(v.count_ones(), 3);
        v.flip(64);
        assert!(!v.get(64));
        v.set(0, false);
        assert_eq!(v.count_ones(), 1);
    }

    #[test]
    fn from_to_bools_roundtrip() {
        let bits: Vec<bool> = (0..77).map(|i| i % 3 == 0).collect();
        let v = BitVec::from_bools(&bits);
        assert_eq!(v.to_bools(), bits);
        assert_eq!(v.count_ones(), bits.iter().filter(|&&b| b).count() as u64);
    }

    #[test]
    fn ones_iterates_in_order() {
        let mut v = BitVec::zeros(200);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 199] {
            v.set(i, true);
        }
        let idx: Vec<usize> = v.ones().collect();
        assert_eq!(idx, vec![0, 1, 63, 64, 65, 127, 128, 199]);
    }

    #[test]
    fn xor_assign_matches_boolwise() {
        let a: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        let b: Vec<bool> = (0..100).map(|i| i % 3 == 0).collect();
        let mut pa = BitVec::from_bools(&a);
        pa.xor_assign(&BitVec::from_bools(&b));
        let want: Vec<bool> = a.iter().zip(&b).map(|(&x, &y)| x ^ y).collect();
        assert_eq!(pa.to_bools(), want);
    }

    #[test]
    #[should_panic(expected = "self has 3 bits (1 words), other has 65 bits (2 words)")]
    fn xor_assign_length_mismatch_names_both_lengths() {
        let mut a = BitVec::zeros(3);
        a.xor_assign(&BitVec::zeros(65));
    }

    #[test]
    fn random_keeps_tail_zero() {
        let mut rng = rngkit::rngs::StdRng::seed_from_u64(9);
        for len in [1usize, 63, 64, 65, 100, 128, 129] {
            let v = BitVec::random(&mut rng, len);
            assert_eq!(v.words().len(), words_for(len));
            let reconstructed = BitVec::from_bools(&v.to_bools());
            assert_eq!(v, reconstructed, "len {len}: tail bits must be zero");
        }
    }

    #[test]
    fn extend_from_concatenates() {
        let a: Vec<bool> = (0..70).map(|i| i % 5 == 0).collect();
        let b: Vec<bool> = (0..33).map(|i| i % 2 == 1).collect();
        let mut v = BitVec::from_bools(&a);
        v.extend_from(&BitVec::from_bools(&b));
        let mut want = a.clone();
        want.extend_from_slice(&b);
        assert_eq!(v.len(), 103);
        assert_eq!(v.to_bools(), want);
    }

    #[test]
    fn empty_vector() {
        let v = BitVec::zeros(0);
        assert!(v.is_empty());
        assert_eq!(v.count_ones(), 0);
        assert_eq!(v.ones().count(), 0);
        assert_eq!(v.to_bools(), Vec::<bool>::new());
    }

    #[test]
    fn words_for_boundaries() {
        assert_eq!(words_for(0), 0);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(words_for(128), 2);
    }
}
