//! # tdf-pir
//!
//! Private information retrieval — the technology of the paper's *user
//! privacy* dimension (§3–§4, refs [6, 8]).
//!
//! A PIR protocol lets a user fetch record `i` from a database of `n`
//! records without the server(s) learning `i`. This crate implements:
//!
//! * [`trivial`] — the download-everything baseline (perfectly private,
//!   linear communication);
//! * [`linear`] — the basic Chor–Goldreich–Kushilevitz–Sudan [8] k-server
//!   XOR scheme (n-bit queries, one-record answers, information-theoretic
//!   privacy against any k−1 colluding servers);
//! * [`square`] — the O(√n) two-server refinement (the "square scheme");
//! * [`cube`] — the 2^d-server cube scheme with O(d·n^(1/d)) uplink;
//! * [`cpir`] — single-server *computational* PIR in the style of
//!   Kushilevitz–Ostrovsky, built on the Goldwasser–Micali
//!   quadratic-residuosity cryptosystem ([`gm`]) from `tdf-mathkit` primes;
//! * [`batch`] — multi-query batching: `q` pending two-server queries
//!   fused into one cache-hot database sweep, amortizing data traffic
//!   across the batch;
//! * [`hints`] — the offline/online split: √n-subset parities prepared
//!   offline so the online path touches O(√n) words, with a
//!   hint-refresh protocol after consumption;
//! * [`redundant`] — the (m, t)-redundant failure-tolerant retrieval:
//!   checksum-verified pairwise replication that detects and masks up to
//!   `t` byzantine or silent servers (never returns a wrong record);
//! * [`cost`] — communication/computation accounting, so the `fig_pir_cost`
//!   experiment can reproduce the asymptotic separations;
//! * [`store`] — a PIR-backed record store with an explicit server *view*,
//!   used by `tdf-core` to measure query leakage in bits.

pub mod batch;
pub mod bits;
pub mod cost;
pub mod cpir;
pub mod cube;
pub mod gm;
pub mod hints;
pub mod linear;
pub mod redundant;
pub mod square;
pub mod store;
pub mod trivial;

pub use batch::{BatchOutcome, BatchQuery};
pub use bits::BitVec;
pub use cost::CostReport;
pub use hints::ClientHints;
pub use redundant::{PirError, VerifiedDatabase};
pub use store::{Database, ServerView};
