//! Offline/online PIR hints: O(√n) online work per query after a
//! linear-time preprocessing pass, in the style of Corrigan-Gibbs and
//! Kogan's offline/online PIR (see PAPERS.md).
//!
//! **Offline**, the client XOR-aggregates pseudorandom √n-sized record
//! subsets into *hints*. The database is split into ⌈√n⌉-wide blocks;
//! subset `j` holds exactly one member per block, chosen by a
//! splitmix64 stream seeded from `(seed, epoch, j)`, and the hint
//! stores the parity (XOR) of those members. Every hint is therefore
//! reproducible from its seed — [`ClientHints::prepare`] twice with the
//! same arguments yields identical parities.
//!
//! **Online**, to fetch record `i` the client finds an unconsumed hint
//! whose subset contains `i`, sends the subset *punctured at `i`* (the
//! other set_size − 1 members), and XORs the server's answer
//! ([`answer_punctured`]) with the stored parity. The server touches
//! O(√n) record words instead of sweeping a packed n-bit mask — the
//! o(n) online path the scale bench measures.
//!
//! **Refresh.** A hint is one-time: after a retrieval its subset is
//! correlated with the queried index, so it is marked consumed. When no
//! live hint covers an index, the whole pool regenerates at `epoch + 1`
//! with a fresh offline pass — the hint-refresh protocol. Pools of
//! λ·√n hints miss a uniform index with probability ≈ e^(−λ), so
//! refreshes are rare for λ ≥ 4 until the pool is mostly consumed.
//!
//! **Honesty note.** The punctured subset reveals set_size − 1 real
//! members to the server, which leaks more than a true puncturable-PRF
//! set; like the rest of this crate the contribution is the *cost
//! model* — a faithful offline/online split with measured O(√n) online
//! work — not a drop-in cryptographic artifact. DESIGN §14 spells out
//! the gap.

use crate::cost::{hint_offline_words, hint_online_words};
use crate::store::Database;

/// One aggregated subset: the seed that regenerates its members and the
/// XOR of those members' records.
#[derive(Debug, Clone)]
struct Hint {
    rseed: u64,
    parity: Vec<u8>,
    consumed: bool,
}

/// A client's hint pool over one database.
#[derive(Debug, Clone)]
pub struct ClientHints {
    n: usize,
    record_size: usize,
    /// Width of each block; also the ceiling of √n.
    block: usize,
    /// Number of blocks = members per subset (the "set size").
    blocks: usize,
    seed: u64,
    epoch: u64,
    hints: Vec<Hint>,
}

/// The result of one hint-based online retrieval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HintAnswer {
    /// The requested record, bit-exact.
    pub record: Vec<u8>,
    /// True when the retrieval had to refresh the pool first.
    pub refreshed: bool,
    /// Record-data words the server touched — `hint_online_words`.
    pub online_words: u64,
}

/// Per-hint seed for `(master seed, epoch, hint j)` — splitmix64 over a
/// mix of all three, so every epoch regenerates a fresh pool and every
/// hint draws an independent member stream.
fn hint_seed(seed: u64, epoch: u64, j: usize) -> u64 {
    let mut state = seed
        ^ epoch.wrapping_mul(0xA076_1D64_78BD_642F)
        ^ (j as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    rngkit::splitmix64(&mut state)
}

/// The subset member inside block `b`: a splitmix64 draw mapped into the
/// block's `[b·width, min((b+1)·width, n))` range.
fn subset_member(n: usize, width: usize, rseed: u64, b: usize) -> usize {
    let start = b * width;
    let span = width.min(n - start);
    let mut state = rseed ^ (b as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93);
    start + (rngkit::splitmix64(&mut state) % span as u64) as usize
}

/// ⌈√n⌉ without floating-point drift at the boundaries.
fn isqrt_ceil(n: usize) -> usize {
    let mut s = (n as f64).sqrt() as usize;
    while s.saturating_mul(s) < n {
        s += 1;
    }
    while s > 1 && (s - 1) * (s - 1) >= n {
        s -= 1;
    }
    s.max(1)
}

impl ClientHints {
    /// Runs the offline pass: aggregates `count` pseudorandom subsets of
    /// `db` into parities, deterministically from `seed`. The pass is
    /// chunked through the `tdf-par` executor (one task span per hint
    /// range) and is bit-identical at any thread count.
    pub fn prepare(db: &Database, seed: u64, count: usize) -> Self {
        assert!(
            !db.is_empty(),
            "hint preparation needs a non-empty database"
        );
        let n = db.len();
        let block = isqrt_ceil(n);
        let mut pool = Self {
            n,
            record_size: db.record_size(),
            block,
            blocks: n.div_ceil(block),
            seed,
            epoch: 0,
            hints: Vec::new(),
        };
        pool.fill(db, count);
        pool
    }

    fn fill(&mut self, db: &Database, count: usize) {
        let (n, width, blocks, seed, epoch) =
            (self.n, self.block, self.blocks, self.seed, self.epoch);
        self.hints = par::par_map_range(count, |j| {
            let rseed = hint_seed(seed, epoch, j);
            let members: Vec<usize> = (0..blocks)
                .map(|b| subset_member(n, width, rseed, b))
                .collect();
            Hint {
                rseed,
                parity: db.xor_indices(&members),
                consumed: false,
            }
        });
        obs::count("pir.hint.prepared", count as u64);
        obs::count(
            "pir.words_scanned",
            hint_offline_words(count, blocks, self.record_size),
        );
    }

    /// Discards the pool and regenerates it at the next epoch — the
    /// refresh protocol a client runs when its hints are spent.
    pub fn refresh(&mut self, db: &Database) {
        assert_eq!(
            db.len(),
            self.n,
            "hint refresh against a different database: db has {} records, hints cover {}",
            db.len(),
            self.n
        );
        self.epoch += 1;
        let count = self.hints.len();
        self.fill(db, count);
        obs::count("pir.hint.refreshes", 1);
    }

    /// Retrieves record `index` through the online path, refreshing the
    /// pool if no live hint covers the index. The returned record is
    /// always bit-exact — a refresh costs an offline pass, never
    /// correctness.
    pub fn retrieve(&mut self, db: &Database, index: usize) -> HintAnswer {
        assert!(
            index < self.n,
            "record index {index} out of range: hints cover {} records",
            self.n
        );
        assert_eq!(
            db.len(),
            self.n,
            "hint retrieval against a different database: db has {} records, hints cover {}",
            db.len(),
            self.n
        );
        let mut refreshed = false;
        // Each refresh regenerates the pool from (seed, epoch + 1), and a
        // λ·√n pool misses a given index with probability ≈ e^(−λ), so
        // the loop converges almost immediately; the cap turns a miswired
        // pool (count = 0) into a loud panic instead of a spin.
        for _ in 0..64 {
            let b = index / self.block;
            let covering = self.hints.iter().position(|h| {
                !h.consumed && subset_member(self.n, self.block, h.rseed, b) == index
            });
            let Some(slot) = covering else {
                self.refresh(db);
                refreshed = true;
                continue;
            };
            let hint = &mut self.hints[slot];
            hint.consumed = true;
            let rseed = hint.rseed;
            let mut record = hint.parity.clone();
            // Puncture: every member except the target. Only block b's
            // member can equal `index`, and it does by construction.
            let punctured: Vec<usize> = (0..self.blocks)
                .map(|blk| subset_member(self.n, self.block, rseed, blk))
                .filter(|&m| m != index)
                .collect();
            let answer = answer_punctured(db, &punctured);
            for (r, a) in record.iter_mut().zip(&answer) {
                *r ^= a;
            }
            obs::count("pir.hint.consumed", 1);
            return HintAnswer {
                record,
                refreshed,
                online_words: hint_online_words(self.blocks, self.record_size),
            };
        }
        panic!(
            "hint pool of {} hints failed to cover index {index} after 64 refresh epochs",
            self.hints.len()
        );
    }

    /// Unconsumed hints still in the pool.
    pub fn remaining(&self) -> usize {
        self.hints.iter().filter(|h| !h.consumed).count()
    }

    /// Total hints in the pool (consumed or not).
    pub fn hint_count(&self) -> usize {
        self.hints.len()
    }

    /// Members per subset — the ⌈n / ⌈√n⌉⌉ block count.
    pub fn set_size(&self) -> usize {
        self.blocks
    }

    /// Current refresh epoch (0 after [`Self::prepare`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Parity bytes of hint `j` — exposed so determinism tests can
    /// compare pools without consuming them.
    pub fn parity(&self, j: usize) -> &[u8] {
        &self.hints[j].parity
    }
}

/// The server side of one online hint query: XOR the punctured subset's
/// records. Touches `punctured.len()` records — O(√n) — and tallies the
/// fetched record-data words into `pir.words_scanned`.
pub fn answer_punctured(db: &Database, punctured: &[usize]) -> Vec<u8> {
    obs::count(
        "pir.words_scanned",
        (punctured.len() * db.record_size().div_ceil(8)) as u64,
    );
    db.xor_indices(punctured)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db(n: usize, rs: usize) -> Database {
        Database::from_fn(n, rs, |i, rec| {
            for (j, b) in rec.iter_mut().enumerate() {
                *b = (i.wrapping_mul(131) + j * 3 + 1) as u8;
            }
        })
    }

    #[test]
    fn online_retrieval_is_exact_for_every_index() {
        let db = db(200, 9);
        let mut pool = ClientHints::prepare(&db, 0xABCD, 400);
        for i in 0..db.len() {
            let got = pool.retrieve(&db, i);
            assert_eq!(got.record, db.record(i), "index {i}");
            assert_eq!(got.online_words, hint_online_words(pool.set_size(), 9));
        }
    }

    #[test]
    fn preparation_is_deterministic_in_seed_and_epoch() {
        let db = db(150, 16);
        let a = ClientHints::prepare(&db, 42, 30);
        let b = ClientHints::prepare(&db, 42, 30);
        for j in 0..30 {
            assert_eq!(a.parity(j), b.parity(j), "hint {j}");
        }
        let c = ClientHints::prepare(&db, 43, 30);
        assert!(
            (0..30).any(|j| a.parity(j) != c.parity(j)),
            "different seeds must yield different pools"
        );
    }

    #[test]
    fn hints_are_consumed_once_and_pool_drains() {
        let db = db(100, 8);
        let mut pool = ClientHints::prepare(&db, 7, 50);
        assert_eq!(pool.remaining(), 50);
        let _ = pool.retrieve(&db, 3);
        assert_eq!(pool.remaining(), 49);
    }

    #[test]
    fn exhausted_pool_refreshes_and_stays_correct() {
        let db = db(64, 8);
        // A tiny pool: exhaustion (and hence refresh) happens fast.
        let mut pool = ClientHints::prepare(&db, 9, 4);
        let mut refreshes = 0;
        for round in 0..40 {
            let i = (round * 13) % db.len();
            let got = pool.retrieve(&db, i);
            assert_eq!(got.record, db.record(i), "round {round} index {i}");
            if got.refreshed {
                refreshes += 1;
            }
        }
        assert!(refreshes > 0, "40 queries through 4 hints must refresh");
        assert!(pool.epoch() > 0);
    }

    #[test]
    fn preparation_is_identical_across_thread_counts() {
        let db = db(2000, 32);
        let parities = |threads: usize| {
            par::with_threads(threads, || {
                let p = ClientHints::prepare(&db, 5, 2000);
                (0..p.hint_count())
                    .map(|j| p.parity(j).to_vec())
                    .collect::<Vec<_>>()
            })
        };
        assert_eq!(parities(1), parities(4));
    }

    #[test]
    fn single_record_database_works() {
        let db = db(1, 8);
        let mut pool = ClientHints::prepare(&db, 1, 2);
        assert_eq!(pool.set_size(), 1);
        let got = pool.retrieve(&db, 0);
        assert_eq!(got.record, db.record(0));
        // The punctured set was empty: zero online words.
        assert_eq!(got.online_words, 0);
    }

    #[test]
    fn isqrt_ceil_boundaries() {
        for (n, want) in [
            (1usize, 1usize),
            (2, 2),
            (4, 2),
            (5, 3),
            (9, 3),
            (10, 4),
            (16, 4),
            (1_000_000, 1000),
        ] {
            assert_eq!(isqrt_ceil(n), want, "n={n}");
        }
    }
}
