//! The basic k-server XOR PIR of Chor–Goldreich–Kushilevitz–Sudan [8].
//!
//! The client secret-shares the unit selection vector `e_index` into `k`
//! random bit-vectors whose XOR is `e_index`; server `j` receives share `j`
//! and answers with the XOR of its selected records; the client XORs all
//! answers to obtain the record. Any coalition of `k − 1` servers sees only
//! uniformly random masks — information-theoretic user privacy, exactly the
//! property §3 of the paper relies on.

use crate::cost::CostReport;
use crate::store::{Database, ServerView};
use rngkit::Rng;

/// A prepared query: one selection mask per server.
#[derive(Debug, Clone)]
pub struct Query {
    shares: Vec<Vec<bool>>,
}

impl Query {
    /// Builds a k-server query for `index` over a database of `n` records.
    pub fn build<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize, index: usize) -> Self {
        assert!(k >= 2, "need at least two non-colluding servers");
        assert!(index < n, "index out of range");
        let mut shares: Vec<Vec<bool>> = (0..k - 1)
            .map(|_| (0..n).map(|_| rng.gen::<bool>()).collect())
            .collect();
        // Last share = XOR of the others, flipped at `index`.
        let last: Vec<bool> = (0..n)
            .map(|i| shares.iter().fold(i == index, |acc, s| acc ^ s[i]))
            .collect();
        shares.push(last);
        Self { shares }
    }

    /// The mask destined for server `j` (this is the server's whole view).
    pub fn share(&self, j: usize) -> &[bool] {
        &self.shares[j]
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.shares.len()
    }
}

/// Runs a full retrieval against `k` honest servers holding replicas of
/// `db`. Returns the record, every server's view, and the cost.
/// ```
/// use tdf_pir::store::Database;
/// use rngkit::SeedableRng;
///
/// let db = Database::new(vec![vec![1u8], vec![2], vec![3]]);
/// let mut rng = rngkit::rngs::StdRng::seed_from_u64(7);
/// let (record, views, cost) = tdf_pir::linear::retrieve(&mut rng, &db, 2, 1);
/// assert_eq!(record, vec![2]);
/// assert_eq!(cost.servers, 2); // neither server learned the index
/// assert_eq!(views.len(), 2);
/// ```
pub fn retrieve<R: Rng + ?Sized>(
    rng: &mut R,
    db: &Database,
    k: usize,
    index: usize,
) -> (Vec<u8>, Vec<ServerView>, CostReport) {
    let q = Query::build(rng, db.len(), k, index);
    let mut acc = vec![0u8; db.record_size()];
    let mut views = Vec::with_capacity(k);
    for j in 0..k {
        let answer = db.xor_selected(q.share(j));
        for (a, b) in acc.iter_mut().zip(&answer) {
            *a ^= b;
        }
        views.push(ServerView::Mask(q.share(j).to_vec()));
    }
    let cost = CostReport {
        uplink_bits: (k * db.len()) as u64,
        downlink_bits: (k * db.record_size() * 8) as u64,
        server_ops: q
            .shares
            .iter()
            .map(|s| s.iter().filter(|&&b| b).count() as u64)
            .sum(),
        servers: k as u32,
    };
    (acc, views, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngkit::SeedableRng;

    fn rng() -> rngkit::rngs::StdRng {
        rngkit::rngs::StdRng::seed_from_u64(77)
    }

    fn db(n: usize) -> Database {
        Database::new((0..n).map(|i| vec![i as u8, (i * 7) as u8, 0xAB]).collect())
    }

    #[test]
    fn two_server_retrieval_is_correct_for_every_index() {
        let db = db(33);
        let mut r = rng();
        for i in 0..db.len() {
            let (rec, _, _) = retrieve(&mut r, &db, 2, i);
            assert_eq!(rec, db.record(i), "index {i}");
        }
    }

    #[test]
    fn many_server_retrieval_is_correct() {
        let db = db(17);
        let mut r = rng();
        for k in [3usize, 4, 7] {
            for i in [0, 8, 16] {
                let (rec, views, cost) = retrieve(&mut r, &db, k, i);
                assert_eq!(rec, db.record(i), "k={k} i={i}");
                assert_eq!(views.len(), k);
                assert_eq!(cost.servers, k as u32);
            }
        }
    }

    #[test]
    fn shares_xor_to_unit_vector() {
        let mut r = rng();
        let q = Query::build(&mut r, 20, 3, 13);
        for pos in 0..20 {
            let x = (0..3).fold(false, |acc, j| acc ^ q.share(j)[pos]);
            assert_eq!(x, pos == 13);
        }
    }

    #[test]
    fn single_share_is_statistically_uniform() {
        // Frequency of `true` at a fixed position across many queries for
        // *different* indices must hover around 1/2: one server learns
        // nothing about the index.
        let mut r = rng();
        let n = 16;
        let trials = 4000;
        let mut ones = vec![0usize; n];
        for t in 0..trials {
            let q = Query::build(&mut r, n, 2, t % n);
            for (pos, &b) in q.share(0).iter().enumerate() {
                if b {
                    ones[pos] += 1;
                }
            }
        }
        for (pos, &c) in ones.iter().enumerate() {
            let f = c as f64 / trials as f64;
            assert!((f - 0.5).abs() < 0.05, "pos {pos}: {f}");
        }
    }

    #[test]
    fn uplink_cost_is_linear_in_n() {
        let mut r = rng();
        let (_, _, c1) = retrieve(&mut r, &db(100), 2, 0);
        let (_, _, c2) = retrieve(&mut r, &db(200), 2, 0);
        assert_eq!(c1.uplink_bits, 200);
        assert_eq!(c2.uplink_bits, 400);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn one_server_panics() {
        let mut r = rng();
        let _ = Query::build(&mut r, 8, 1, 0);
    }
}
