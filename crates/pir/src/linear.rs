//! The basic k-server XOR PIR of Chor–Goldreich–Kushilevitz–Sudan [8].
//!
//! The client secret-shares the unit selection vector `e_index` into `k`
//! random bit-vectors whose XOR is `e_index`; server `j` receives share `j`
//! and answers with the XOR of its selected records; the client XORs all
//! answers to obtain the record. Any coalition of `k − 1` servers sees only
//! uniformly random masks — information-theoretic user privacy, exactly the
//! property §3 of the paper relies on.
//!
//! Shares are word-packed ([`crate::bits::BitVec`]): mask generation draws
//! one RNG word per 64 records and the servers fold their answers in
//! parallel, one `par` task per server, XORed together in server order so
//! the result is bit-identical at any `TDF_THREADS`.

use crate::bits::BitVec;
use crate::cost::{packed_mask_bits, CostReport};
use crate::store::{Database, ServerView};
use rngkit::Rng;

/// A prepared query: one packed selection mask per server.
#[derive(Debug, Clone)]
pub struct Query {
    shares: Vec<BitVec>,
}

impl Query {
    /// Builds a k-server query for `index` over a database of `n` records.
    pub fn build<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize, index: usize) -> Self {
        assert!(k >= 2, "need at least two non-colluding servers");
        assert!(index < n, "index out of range");
        let mut shares: Vec<BitVec> = (0..k - 1).map(|_| BitVec::random(rng, n)).collect();
        // Last share = XOR of the others, flipped at `index`.
        let mut last = BitVec::zeros(n);
        for s in &shares {
            last.xor_assign(s);
        }
        last.flip(index);
        shares.push(last);
        Self { shares }
    }

    /// The mask destined for server `j` (this is the server's whole view).
    pub fn share(&self, j: usize) -> &BitVec {
        &self.shares[j]
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.shares.len()
    }
}

/// Runs a full retrieval against `k` honest servers holding replicas of
/// `db`. Returns the record, every server's view, and the cost.
/// ```
/// use tdf_pir::store::Database;
/// use rngkit::SeedableRng;
///
/// let db = Database::new(vec![vec![1u8], vec![2], vec![3]]);
/// let mut rng = rngkit::rngs::StdRng::seed_from_u64(7);
/// let (record, views, cost) = tdf_pir::linear::retrieve(&mut rng, &db, 2, 1);
/// assert_eq!(record, vec![2]);
/// assert_eq!(cost.servers, 2); // neither server learned the index
/// assert_eq!(views.len(), 2);
/// ```
pub fn retrieve<R: Rng + ?Sized>(
    rng: &mut R,
    db: &Database,
    k: usize,
    index: usize,
) -> (Vec<u8>, Vec<ServerView>, CostReport) {
    let q = Query::build(rng, db.len(), k, index);
    // Each replica computes its answer independently; fold in server
    // order on the client so the result does not depend on scheduling.
    let answers = par::par_map(&q.shares, |s| db.xor_selected(s));
    // One flush for the k whole-mask sweeps `xor_selected` just did.
    obs::count(
        "pir.words_scanned",
        q.shares.iter().map(|s| s.words().len() as u64).sum(),
    );
    let mut acc = vec![0u8; db.record_size()];
    for answer in &answers {
        for (a, b) in acc.iter_mut().zip(answer) {
            *a ^= b;
        }
    }
    let views = q
        .shares
        .iter()
        .map(|s| ServerView::Mask(s.clone()))
        .collect();
    let cost = CostReport {
        uplink_bits: packed_mask_bits(k, db.len()),
        downlink_bits: (k * db.record_size() * 8) as u64,
        server_ops: q.shares.iter().map(BitVec::count_ones).sum(),
        words_scanned: crate::cost::linear_scan_words(k, db.len()),
        servers: k as u32,
    };
    (acc, views, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngkit::SeedableRng;

    fn rng() -> rngkit::rngs::StdRng {
        rngkit::rngs::StdRng::seed_from_u64(77)
    }

    fn db(n: usize) -> Database {
        Database::new((0..n).map(|i| vec![i as u8, (i * 7) as u8, 0xAB]).collect())
    }

    #[test]
    fn two_server_retrieval_is_correct_for_every_index() {
        let db = db(33);
        let mut r = rng();
        for i in 0..db.len() {
            let (rec, _, _) = retrieve(&mut r, &db, 2, i);
            assert_eq!(rec, db.record(i), "index {i}");
        }
    }

    #[test]
    fn many_server_retrieval_is_correct() {
        let db = db(17);
        let mut r = rng();
        for k in [3usize, 4, 7] {
            for i in [0, 8, 16] {
                let (rec, views, cost) = retrieve(&mut r, &db, k, i);
                assert_eq!(rec, db.record(i), "k={k} i={i}");
                assert_eq!(views.len(), k);
                assert_eq!(cost.servers, k as u32);
            }
        }
    }

    #[test]
    fn shares_xor_to_unit_vector() {
        let mut r = rng();
        let q = Query::build(&mut r, 20, 3, 13);
        for pos in 0..20 {
            let x = (0..3).fold(false, |acc, j| acc ^ q.share(j).get(pos));
            assert_eq!(x, pos == 13);
        }
    }

    #[test]
    fn single_share_is_statistically_uniform() {
        // Frequency of `true` at a fixed position across many queries for
        // *different* indices must hover around 1/2: one server learns
        // nothing about the index.
        let mut r = rng();
        let n = 16;
        let trials = 4000;
        let mut ones = vec![0usize; n];
        for t in 0..trials {
            let q = Query::build(&mut r, n, 2, t % n);
            for pos in q.share(0).ones() {
                ones[pos] += 1;
            }
        }
        for (pos, &c) in ones.iter().enumerate() {
            let f = c as f64 / trials as f64;
            assert!((f - 0.5).abs() < 0.05, "pos {pos}: {f}");
        }
    }

    #[test]
    fn uplink_cost_counts_packed_words() {
        let mut r = rng();
        let (_, _, c1) = retrieve(&mut r, &db(100), 2, 0);
        let (_, _, c2) = retrieve(&mut r, &db(200), 2, 0);
        // 100 bits pack into two words, 200 into four; two servers each.
        assert_eq!(c1.uplink_bits, 2 * 2 * 64);
        assert_eq!(c2.uplink_bits, 2 * 4 * 64);
    }

    #[test]
    fn retrieval_is_identical_across_thread_counts() {
        let db = db(257);
        let run = |threads: usize| {
            par::with_threads(threads, || {
                let mut r = rng();
                retrieve(&mut r, &db, 3, 129)
            })
        };
        let (rec1, views1, cost1) = run(1);
        let (rec4, views4, cost4) = run(4);
        assert_eq!(rec1, rec4);
        assert_eq!(views1, views4);
        assert_eq!(cost1, cost4);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn one_server_panics() {
        let mut r = rng();
        let _ = Query::build(&mut r, 8, 1, 0);
    }
}
