//! The O(√n) two-server "square" scheme.
//!
//! The database is arranged as an `s × s` matrix of records (`s = ⌈√n⌉`).
//! To fetch record `(r, c)` the client secret-shares the row selector
//! `e_r` into two random masks; each server XORs, *per column*, the records
//! of its selected rows and returns `s` column-aggregates. XORing the two
//! answer vectors gives row `r` in full, from which the client reads
//! column `c`. Uplink is one packed row mask per server, downlink `s`
//! records per server — total O(√n · record_size) instead of O(n).

use crate::bits::BitVec;
use crate::cost::{packed_mask_bits, CostReport};
use crate::store::{Database, ServerView};
use rngkit::Rng;

/// Side length of the square layout for a database of `n` records.
pub fn side(n: usize) -> usize {
    (n as f64).sqrt().ceil() as usize
}

/// Retrieves record `index` with the two-server square scheme.
pub fn retrieve<R: Rng + ?Sized>(
    rng: &mut R,
    db: &Database,
    index: usize,
) -> (Vec<u8>, [ServerView; 2], CostReport) {
    assert!(index < db.len(), "index out of range");
    let s = side(db.len());
    let (row, col) = (index / s, index % s);

    // Secret-share the row selector: mask_b = mask_a ^ e_row.
    let mask_a = BitVec::random(rng, s);
    let mut mask_b = mask_a.clone();
    mask_b.flip(row);

    let answer = |mask: &BitVec| -> Vec<Vec<u8>> {
        // Per column: XOR of the records in selected rows.
        let out: Vec<Vec<u8>> = (0..s)
            .map(|c| {
                let mut acc = vec![0u8; db.record_size()];
                for r in mask.ones() {
                    let idx = r * s + c;
                    if idx < db.len() {
                        for (a, b) in acc.iter_mut().zip(db.record(idx)) {
                            *a ^= b;
                        }
                    }
                }
                acc
            })
            .collect();
        // One flush per server: the row mask was re-swept once per column.
        obs::count("pir.words_scanned", (s * mask.words().len()) as u64);
        out
    };

    // The two replicas answer independently; collect in server order.
    let masks = [mask_a, mask_b];
    let answers = par::par_map(&masks, answer);
    let [mask_a, mask_b] = masks;
    let mut rec = vec![0u8; db.record_size()];
    for (a, (x, y)) in rec
        .iter_mut()
        .zip(answers[0][col].iter().zip(&answers[1][col]))
    {
        *a = x ^ y;
    }

    let ops = (mask_a.count_ones() + mask_b.count_ones()) * s as u64;
    let cost = CostReport {
        uplink_bits: packed_mask_bits(2, s),
        downlink_bits: 2 * (s * db.record_size() * 8) as u64,
        server_ops: ops,
        words_scanned: crate::cost::square_scan_words(s),
        servers: 2,
    };
    (
        rec,
        [
            ServerView::SquareMask { rows: mask_a },
            ServerView::SquareMask { rows: mask_b },
        ],
        cost,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngkit::SeedableRng;

    fn rng() -> rngkit::rngs::StdRng {
        rngkit::rngs::StdRng::seed_from_u64(88)
    }

    fn db(n: usize) -> Database {
        Database::new(
            (0..n)
                .map(|i| vec![(i % 251) as u8, (i / 251) as u8])
                .collect(),
        )
    }

    #[test]
    fn retrieval_is_correct_for_every_index() {
        // Include a non-square n to exercise the padded final row.
        for n in [16usize, 20, 49, 50] {
            let db = db(n);
            let mut r = rng();
            for i in 0..n {
                let (rec, _, _) = retrieve(&mut r, &db, i);
                assert_eq!(rec, db.record(i), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn communication_is_sublinear() {
        let mut r = rng();
        let (_, _, c_small) = retrieve(&mut r, &db(100), 0);
        let (_, _, c_big) = retrieve(&mut r, &db(10_000), 0);
        // n grew 100×; √n communication should grow ~10×.
        let ratio = c_big.total_bits() as f64 / c_small.total_bits() as f64;
        assert!((5.0..20.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn square_beats_linear_uplink_for_large_n() {
        let n = 4096;
        let db = db(n);
        let mut r = rng();
        let (_, _, sq) = retrieve(&mut r, &db, 77);
        let (_, _, lin) = crate::linear::retrieve(&mut r, &db, 2, 77);
        assert!(sq.uplink_bits < lin.uplink_bits / 10);
    }

    #[test]
    fn retrieval_is_identical_across_thread_counts() {
        let db = db(100);
        let run = |threads: usize| {
            par::with_threads(threads, || {
                let mut r = rng();
                retrieve(&mut r, &db, 42)
            })
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn each_view_is_uniform_regardless_of_row() {
        let n = 64; // s = 8
        let db = db(n);
        let mut r = rng();
        let trials = 4000;
        let mut ones = vec![0usize; 8];
        for t in 0..trials {
            let (_, [va, _], _) = retrieve(&mut r, &db, t % n);
            if let ServerView::SquareMask { rows } = va {
                for p in rows.ones() {
                    ones[p] += 1;
                }
            }
        }
        for &c in &ones {
            let f = c as f64 / trials as f64;
            assert!((f - 0.5).abs() < 0.05, "{f}");
        }
    }
}
