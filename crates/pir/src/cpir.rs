//! Single-server computational PIR (Kushilevitz–Ostrovsky style).
//!
//! The bit database is laid out as an `s × s` matrix. The client sends one
//! GM ciphertext per column — encrypting 1 only at the wanted column — and
//! the server returns, per row, the product of the ciphertexts of that
//! row's 1-columns. By the XOR homomorphism, row `r`'s aggregate decrypts
//! to `M[r][c]`: the wanted bit. The server computes over ciphertexts only,
//! so (under quadratic residuosity) it learns nothing about the index, with
//! a *single* server — the paper's "single database PIR" [6].

use crate::cost::CostReport;
use crate::gm::{self, PrivateKey, PublicKey};
use crate::store::{Database, ServerView};
use rngkit::Rng;
use tdf_mathkit::BigUint;

/// A client with a fresh GM key pair.
#[derive(Debug, Clone)]
pub struct Client {
    pk: PublicKey,
    sk: PrivateKey,
}

impl Client {
    /// Creates a client with `bits`-bit primes (modulus ≈ 2·bits).
    pub fn new<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> Self {
        let (pk, sk) = gm::keygen(rng, bits);
        Self { pk, sk }
    }

    /// The public key shipped to the server.
    pub fn public_key(&self) -> &PublicKey {
        &self.pk
    }
}

/// Retrieves bit `index` of a bit database (records must be 1 byte holding
/// 0 or 1, as produced by [`Database::from_bits`]).
pub fn retrieve_bit<R: Rng + ?Sized>(
    rng: &mut R,
    client: &Client,
    db: &Database,
    index: usize,
) -> (bool, ServerView, CostReport) {
    assert!(index < db.len(), "index out of range");
    assert_eq!(db.record_size(), 1, "cpir works on bit databases");
    let s = (db.len() as f64).sqrt().ceil() as usize;
    let (row, col) = (index / s, index % s);

    // Query: per-column ciphertexts, encrypting the unit vector e_col.
    let query: Vec<BigUint> = (0..s)
        .map(|j| gm::encrypt(&client.pk, j == col, rng))
        .collect();

    // Server: per-row homomorphic aggregate over its 1-entries.
    let mut server_ops = 0u64;
    let answers: Vec<BigUint> = (0..s)
        .map(|r| {
            let mut acc = gm::encrypt(&client.pk, false, rng); // E(0) seed
            for (j, q) in query.iter().enumerate() {
                let idx = r * s + j;
                if idx < db.len() && db.record(idx)[0] == 1 {
                    acc = gm::xor_ciphertexts(&client.pk, &acc, q);
                    server_ops += 1;
                }
            }
            acc
        })
        .collect();

    let bit = gm::decrypt(&client.sk, &answers[row]);
    let modulus_bits = client.pk.n.bit_length() as u64;
    let cost = CostReport {
        uplink_bits: s as u64 * modulus_bits,
        downlink_bits: s as u64 * modulus_bits,
        server_ops,
        words_scanned: 0,
        servers: 1,
    };
    (bit, ServerView::Ciphertexts(s), cost)
}

/// Retrieves a whole byte-record by running [`retrieve_bit`] per bit of the
/// record (communication multiplies accordingly; the benches account it).
pub fn retrieve_record<R: Rng + ?Sized>(
    rng: &mut R,
    client: &Client,
    records: &[Vec<u8>],
    index: usize,
) -> (Vec<u8>, CostReport) {
    let record_size = records.first().map_or(0, Vec::len);
    let n = records.len();
    let mut cost = CostReport::default();
    let mut out = vec![0u8; record_size];
    for byte in 0..record_size {
        for bit in 0..8 {
            // One bit-database per (byte, bit) position.
            let bits: Vec<bool> = (0..n).map(|i| (records[i][byte] >> bit) & 1 == 1).collect();
            let db = Database::from_bits(&bits);
            let (b, _, c) = retrieve_bit(rng, client, &db, index);
            if b {
                out[byte] |= 1 << bit;
            }
            cost += c;
        }
    }
    cost.servers = 1;
    (out, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngkit::SeedableRng;

    fn rng() -> rngkit::rngs::StdRng {
        rngkit::rngs::StdRng::seed_from_u64(31337)
    }

    #[test]
    fn bit_retrieval_is_correct() {
        let mut r = rng();
        let client = Client::new(&mut r, 48);
        let bits: Vec<bool> = (0..30).map(|i| i % 5 == 0 || i % 7 == 3).collect();
        let db = Database::from_bits(&bits);
        for (i, &expected) in bits.iter().enumerate() {
            let (b, view, _) = retrieve_bit(&mut r, &client, &db, i);
            assert_eq!(b, expected, "index {i}");
            assert_eq!(view, ServerView::Ciphertexts(6));
        }
    }

    #[test]
    fn record_retrieval_reassembles_bytes() {
        let mut r = rng();
        let client = Client::new(&mut r, 40);
        let records: Vec<Vec<u8>> = vec![vec![0xDE], vec![0xAD], vec![0xBE], vec![0xEF]];
        for i in 0..records.len() {
            let (rec, _) = retrieve_record(&mut r, &client, &records, i);
            assert_eq!(rec, records[i], "index {i}");
        }
    }

    #[test]
    fn communication_is_sublinear_in_n() {
        let mut r = rng();
        let client = Client::new(&mut r, 40);
        let small = Database::from_bits(&[false; 64]);
        let large = Database::from_bits(&vec![false; 6400]);
        let (_, _, c_small) = retrieve_bit(&mut r, &client, &small, 0);
        let (_, _, c_large) = retrieve_bit(&mut r, &client, &large, 0);
        let ratio = c_large.total_bits() as f64 / c_small.total_bits() as f64;
        assert!(ratio < 15.0, "100× data should cost ~10× bits, got {ratio}");
    }

    #[test]
    fn single_server_only() {
        let mut r = rng();
        let client = Client::new(&mut r, 40);
        let db = Database::from_bits(&[true, false, true, true]);
        let (_, _, cost) = retrieve_bit(&mut r, &client, &db, 2);
        assert_eq!(cost.servers, 1);
    }
}
