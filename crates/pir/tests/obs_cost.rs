//! The measured `pir.words_scanned` counter must equal the analytical
//! `CostReport::words_scanned` prediction, exactly, for every protocol
//! and database size — the observability layer and the cost model are
//! two independent derivations of the same quantity (the counter tallies
//! actual mask sweeps at the scan sites; the model computes them from
//! `n`, `k`, `d` and the drawn subset popcounts).

use rngkit::SeedableRng;
use tdf_pir::store::Database;

fn db(n: usize) -> Database {
    Database::new(
        (0..n)
            .map(|i| vec![i as u8, (i >> 8) as u8, 0x5A])
            .collect(),
    )
}

fn measured(run: impl FnOnce()) -> u64 {
    obs::reset();
    run();
    let counted = obs::snapshot().counter("pir.words_scanned");
    obs::reset();
    counted
}

#[test]
fn words_scanned_counter_matches_cost_model_exactly() {
    obs::set_level(1);
    for n in [64usize, 1000, 4096] {
        let db = db(n);
        let mut rng = rngkit::rngs::StdRng::seed_from_u64(n as u64);
        let index = n / 3;

        for k in [2usize, 3] {
            let mut cost = None;
            let counted = measured(|| {
                cost = Some(tdf_pir::linear::retrieve(&mut rng, &db, k, index).2);
            });
            let cost = cost.expect("retrieval ran");
            assert_eq!(counted, cost.words_scanned, "linear k={k} n={n}");
            assert_eq!(
                cost.words_scanned,
                tdf_pir::cost::linear_scan_words(k, n),
                "linear model k={k} n={n}"
            );
        }

        let mut cost = None;
        let counted = measured(|| {
            cost = Some(tdf_pir::square::retrieve(&mut rng, &db, index).2);
        });
        assert_eq!(
            counted,
            cost.expect("retrieval ran").words_scanned,
            "square n={n}"
        );

        for d in [2u32, 3] {
            let mut cost = None;
            let counted = measured(|| {
                cost = Some(tdf_pir::cube::retrieve(&mut rng, &db, d, index).2);
            });
            assert_eq!(
                counted,
                cost.expect("retrieval ran").words_scanned,
                "cube d={d} n={n}"
            );
        }
    }
    obs::set_level(0);
}
