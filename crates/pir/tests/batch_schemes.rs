//! Batch retrieval vs the single-query paths.
//!
//! A batch of one must be *bit-identical* to the existing two-server
//! linear path — records, masks and cost — and must agree record-wise
//! with every other scheme (square, cube, trivial), at `TDF_THREADS`
//! 1 and 4. A fault-injected `pir.batch_drop` must degrade the batch
//! to per-query retries and never change a record.

use rngkit::rngs::StdRng;
use rngkit::SeedableRng;
use std::sync::Mutex;
use tdf_pir::batch::{retrieve_batch, BatchQuery};
use tdf_pir::store::{Database, ServerView};

/// The fault plan is process-global: serialise tests that install one.
static PLAN: Mutex<()> = Mutex::new(());

fn with_fault_plan<T>(text: &str, f: impl FnOnce() -> T) -> T {
    let _guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    faultkit::set_plan(Some(faultkit::FaultPlan::parse(text).unwrap()));
    let out = f();
    faultkit::set_plan(None);
    out
}

fn db(n: usize) -> Database {
    Database::from_fn(n, 32, |i, rec| {
        for (j, b) in rec.iter_mut().enumerate() {
            *b = (i.wrapping_mul(0x9E37) >> (j % 13)) as u8;
        }
    })
}

#[test]
fn batch_of_one_is_bit_identical_to_the_linear_path_at_1_and_4_threads() {
    let db = db(4096);
    for threads in [1usize, 4] {
        par::with_threads(threads, || {
            for index in [0usize, 63, 64, 2048, 4095] {
                let (record, views, cost) = {
                    let mut rng = StdRng::seed_from_u64(0xB417);
                    tdf_pir::linear::retrieve(&mut rng, &db, 2, index)
                };
                let out = {
                    let mut rng = StdRng::seed_from_u64(0xB417);
                    retrieve_batch(&mut rng, &db, &[index])
                };
                assert_eq!(out.records, vec![record], "threads={threads} index={index}");
                assert_eq!(out.cost, cost, "threads={threads} index={index}");
                // Same RNG stream ⇒ the batch sent the very same masks.
                let q = {
                    let mut rng = StdRng::seed_from_u64(0xB417);
                    BatchQuery::build(&mut rng, db.len(), &[index])
                };
                for (j, view) in views.iter().enumerate() {
                    assert_eq!(
                        *view,
                        ServerView::Mask(q.queries()[0].share(j).clone()),
                        "threads={threads} index={index} server={j}"
                    );
                }
            }
        });
    }
}

#[test]
fn batch_of_one_agrees_with_every_scheme_at_1_and_4_threads() {
    let db = db(1000);
    for threads in [1usize, 4] {
        par::with_threads(threads, || {
            for index in [0usize, 1, 499, 999] {
                let mut rng = StdRng::seed_from_u64(7 + index as u64);
                let batched = retrieve_batch(&mut rng, &db, &[index]);
                let want = db.record(index).to_vec();
                assert_eq!(
                    batched.records[0], want,
                    "batch threads={threads} i={index}"
                );

                let (lin, _, _) = tdf_pir::linear::retrieve(&mut rng, &db, 3, index);
                assert_eq!(lin, want, "linear threads={threads} i={index}");
                let (sq, _, _) = tdf_pir::square::retrieve(&mut rng, &db, index);
                assert_eq!(sq, want, "square threads={threads} i={index}");
                for d in [2u32, 3] {
                    let (cu, _, _) = tdf_pir::cube::retrieve(&mut rng, &db, d, index);
                    assert_eq!(cu, want, "cube d={d} threads={threads} i={index}");
                }
                let (tr, _, _) = tdf_pir::trivial::retrieve(&db, index);
                assert_eq!(tr, want, "trivial threads={threads} i={index}");
            }
        });
    }
}

#[test]
fn batch_of_many_matches_sequential_single_queries() {
    let db = db(3000);
    let indices: Vec<usize> = (0..24).map(|t| (t * 997) % 3000).collect();
    // Sequential single-query retrievals, drawing from one RNG stream...
    let sequential: Vec<Vec<u8>> = {
        let mut rng = StdRng::seed_from_u64(0x5E0);
        indices
            .iter()
            .map(|&i| tdf_pir::linear::retrieve(&mut rng, &db, 2, i).0)
            .collect()
    };
    // ...must equal one fused batch over the same stream.
    let mut rng = StdRng::seed_from_u64(0x5E0);
    let batched = retrieve_batch(&mut rng, &db, &indices);
    assert_eq!(batched.records, sequential);
}

#[test]
fn dropped_batch_degrades_to_per_query_retries_never_a_wrong_record() {
    let db = db(2048);
    let indices: Vec<usize> = (0..9).map(|t| t * 227).collect();
    let clean = {
        let mut rng = StdRng::seed_from_u64(0xD209);
        retrieve_batch(&mut rng, &db, &indices)
    };
    assert!(!clean.degraded);

    let before = obs::level();
    obs::set_level(1);
    let faulted = with_fault_plan("pir.batch_drop=1", || {
        let mut rng = StdRng::seed_from_u64(0xD209);
        retrieve_batch(&mut rng, &db, &indices)
    });
    let drops = obs::snapshot().counter("pir.batch.drops");
    obs::set_level(before);

    assert!(faulted.degraded, "the drop plan must trip the batch");
    assert!(drops >= 1, "the drop must be counted");
    // Same seed ⇒ same masks ⇒ the per-query fallback answers the very
    // same queries: identical records and identical cost.
    assert_eq!(faulted.records, clean.records);
    assert_eq!(faulted.cost, clean.cost);
    for (l, &i) in indices.iter().enumerate() {
        assert_eq!(faulted.records[l], db.record(i).to_vec(), "lane {l}");
    }

    // Budget exhausted: the next batch fuses normally again.
    let after = {
        let mut rng = StdRng::seed_from_u64(0xD209);
        retrieve_batch(&mut rng, &db, &indices)
    };
    assert!(!after.degraded);
    assert_eq!(after.records, clean.records);
}
