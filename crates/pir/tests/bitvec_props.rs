//! Property tests: the word-packed `BitVec` must agree with the
//! `Vec<bool>` reference representation on arbitrary inputs — XOR,
//! popcount, the set-bit iterator, and the database scan built on top.

use check::prelude::*;
use tdf_pir::bits::BitVec;
use tdf_pir::store::Database;

/// Expands bytes into one bool per bit: arbitrary-length bool vectors
/// from the byte strategy, densities included.
fn bools_from(bytes: &[u8]) -> Vec<bool> {
    bytes
        .iter()
        .flat_map(|&b| (0..8).map(move |i| b >> i & 1 == 1))
        .collect()
}

props! {
    #[test]
    fn roundtrip_preserves_bits(bytes in vec(any::<u8>(), 0..40)) {
        let bits = bools_from(&bytes);
        let packed = BitVec::from_bools(&bits);
        prop_assert_eq!(packed.len(), bits.len());
        prop_assert_eq!(packed.to_bools(), bits.clone());
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(packed.get(i), b);
        }
    }

    #[test]
    fn xor_matches_boolwise_reference(a in vec(any::<u8>(), 0..32), b in vec(any::<u8>(), 0..32)) {
        let len = a.len().min(b.len()) * 8;
        let ba: Vec<bool> = bools_from(&a)[..len].to_vec();
        let bb: Vec<bool> = bools_from(&b)[..len].to_vec();
        let mut packed = BitVec::from_bools(&ba);
        packed.xor_assign(&BitVec::from_bools(&bb));
        let want: Vec<bool> = ba.iter().zip(&bb).map(|(&x, &y)| x ^ y).collect();
        prop_assert_eq!(packed.to_bools(), want);
    }

    #[test]
    fn popcount_matches_reference(bytes in vec(any::<u8>(), 0..40)) {
        let bits = bools_from(&bytes);
        let packed = BitVec::from_bools(&bits);
        let want = bits.iter().filter(|&&b| b).count() as u64;
        prop_assert_eq!(packed.count_ones(), want);
    }

    #[test]
    fn ones_iterator_matches_reference(bytes in vec(any::<u8>(), 0..40)) {
        let bits = bools_from(&bytes);
        let packed = BitVec::from_bools(&bits);
        let want: Vec<usize> = bits
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect();
        prop_assert_eq!(packed.ones().collect::<Vec<usize>>(), want);
    }

    #[test]
    fn packed_scan_equals_bool_scan(
        mask_bytes in vec(any::<u8>(), 1..17),
        record_size in 1usize..20,
        seed in any::<u8>(),
    ) {
        let bits = bools_from(&mask_bytes);
        let n = bits.len();
        let db = Database::new(
            (0..n)
                .map(|i| {
                    (0..record_size)
                        .map(|j| (i as u8).wrapping_mul(17).wrapping_add(j as u8) ^ seed)
                        .collect()
                })
                .collect(),
        );
        let packed = BitVec::from_bools(&bits);
        prop_assert_eq!(db.xor_selected(&packed), db.xor_selected_bools(&bits));
    }
}
