//! Property test: the measured `pir.words_scanned` counter must equal
//! the analytical cost-model prediction for *randomized* shapes of every
//! scheme — linear (any k), square, cube (any d), the fused batch path
//! (any q) and the offline/online hint path. The counter tallies actual
//! work at the scan sites; the model computes the same quantity from
//! `n`, `k`, `d`, `q` and the subset sizes. Any drift between the two
//! derivations is a bug in one of them.
//!
//! This file holds exactly one test: the obs registry is process-global,
//! so the reset/measure window must not race another test in the same
//! binary.

use check::prelude::*;
use rngkit::rngs::StdRng;
use rngkit::SeedableRng;
use tdf_pir::cost::{batch_scan_words, hint_offline_words, hint_online_words, linear_scan_words};
use tdf_pir::store::Database;

fn measured(run: impl FnOnce()) -> u64 {
    obs::reset();
    run();
    let counted = obs::snapshot().counter("pir.words_scanned");
    obs::reset();
    counted
}

props! {
    #[test]
    fn words_scanned_matches_the_model_for_random_shapes(
        n in 1usize..400,
        k in 2usize..5,
        d in 1u32..4,
        q in 0usize..6,
        seed in any::<u64>(),
    ) {
        obs::set_level(1);
        let db = Database::from_fn(n, 9, |i, rec| {
            for (j, b) in rec.iter_mut().enumerate() {
                *b = (i * 31 + j) as u8 ^ seed as u8;
            }
        });
        let mut rng = StdRng::seed_from_u64(seed);
        let index = seed as usize % n;

        // Linear: k whole-mask sweeps.
        let mut cost = None;
        let counted = measured(|| {
            cost = Some(tdf_pir::linear::retrieve(&mut rng, &db, k, index).2);
        });
        let cost = cost.expect("retrieval ran");
        prop_assert_eq!(counted, cost.words_scanned);
        prop_assert_eq!(cost.words_scanned, linear_scan_words(k, n));

        // Square: the report is the model (s column re-scans per server).
        let mut cost = None;
        let counted = measured(|| {
            cost = Some(tdf_pir::square::retrieve(&mut rng, &db, index).2);
        });
        prop_assert_eq!(counted, cost.expect("retrieval ran").words_scanned);

        // Cube: the report derives from the drawn subset popcounts.
        let mut cost = None;
        let counted = measured(|| {
            cost = Some(tdf_pir::cube::retrieve(&mut rng, &db, d, index).2);
        });
        prop_assert_eq!(counted, cost.expect("retrieval ran").words_scanned);

        // Batch: q masks × 2 servers, on both the fused and the
        // (fault-free here) per-query accounting.
        let indices: Vec<usize> = (0..q).map(|t| (index + t * 7) % n).collect();
        let mut cost = None;
        let counted = measured(|| {
            cost = Some(tdf_pir::batch::retrieve_batch(&mut rng, &db, &indices).cost);
        });
        let cost = cost.expect("retrieval ran");
        prop_assert_eq!(counted, cost.words_scanned);
        prop_assert_eq!(cost.words_scanned, batch_scan_words(q, n));

        // Hints: the offline pass folds count × set_size records; each
        // online answer fetches set_size − 1 records; a refresh (rare,
        // visible as an epoch step) re-runs the offline pass.
        let count = 2 * (n.min(40)) + 1;
        let mut pool = None;
        let counted = measured(|| {
            pool = Some(tdf_pir::hints::ClientHints::prepare(&db, seed, count));
        });
        let mut pool = pool.expect("preparation ran");
        prop_assert_eq!(counted, hint_offline_words(count, pool.set_size(), 9));
        let epoch_before = pool.epoch();
        let mut answer = None;
        let counted = measured(|| {
            answer = Some(pool.retrieve(&db, index));
        });
        let answer = answer.expect("retrieval ran");
        prop_assert_eq!(answer.record, db.record(index).to_vec());
        let refreshes = pool.epoch() - epoch_before;
        prop_assert_eq!(
            counted,
            refreshes * hint_offline_words(count, pool.set_size(), 9)
                + hint_online_words(pool.set_size(), 9)
        );
        prop_assert_eq!(answer.online_words, hint_online_words(pool.set_size(), 9));
        obs::set_level(0);
    }
}
