//! Greedy local suppression.
//!
//! Cell-level suppression replaces quasi-identifier values of offending
//! records with [`Value::Missing`]. For k-anonymity purposes a suppressed
//! cell is treated as its own value — so full-row QI suppression merges all
//! fully-suppressed records into one equivalence class.
//!
//! The greedy strategy: while a class of size < k exists, suppress the
//! quasi-identifier column whose suppression (across all offending records)
//! merges the most records, and repeat. Falls back to suppressing the whole
//! QI of irreducible outliers.

use crate::model::k_anonymity_level;
use tdf_microdata::{Dataset, Value};

/// Statistics of a suppression run.
#[derive(Debug, Clone, PartialEq)]
pub struct SuppressionResult {
    /// The k-anonymized dataset (same schema; suppressed cells are Missing).
    pub data: Dataset,
    /// Total number of suppressed cells.
    pub suppressed_cells: usize,
}

/// Suppresses quasi-identifier cells until `data` is `k`-anonymous.
pub fn suppress_to_k_anonymity(data: &Dataset, k: usize) -> SuppressionResult {
    assert!(k >= 1, "k must be at least 1");
    let qi = data.schema().quasi_identifier_indices();
    let mut out = data.clone();
    let mut suppressed_cells = 0usize;

    if qi.is_empty() || data.is_empty() {
        return SuppressionResult {
            data: out,
            suppressed_cells,
        };
    }

    // Round-robin over QI columns: suppress the next column of every record
    // still in an under-sized class, re-check, repeat. Terminates because
    // after all columns are suppressed every record shares one class.
    for round in 0..qi.len() {
        if k_anonymity_level(&out).is_none_or(|l| l >= k) {
            break;
        }
        // Choose the column whose suppression yields the fewest remaining
        // offending records.
        let mut best: Option<(usize, usize)> = None; // (col, offenders after)
        for &col in qi.iter().skip(round).chain(qi.iter().take(round)) {
            let candidate = suppress_column_of_offenders(&out, k, col);
            let offenders = count_offenders(&candidate.0, k);
            if best.is_none_or(|(_, o)| offenders < o) {
                best = Some((col, offenders));
            }
        }
        if let Some((col, _)) = best {
            let (next, cells) = suppress_column_of_offenders(&out, k, col);
            out = next;
            suppressed_cells += cells;
        }
    }
    SuppressionResult {
        data: out,
        suppressed_cells,
    }
}

fn count_offenders(data: &Dataset, k: usize) -> usize {
    data.quasi_identifier_groups()
        .values()
        .filter(|g| g.len() < k)
        .map(Vec::len)
        .sum()
}

fn suppress_column_of_offenders(data: &Dataset, k: usize, col: usize) -> (Dataset, usize) {
    let mut out = data.clone();
    let mut cells = 0usize;
    for members in data.quasi_identifier_groups().values() {
        if members.len() < k {
            for &i in members {
                if !out.col(col).is_missing(i) {
                    out.set_value(i, col, Value::Missing)
                        .expect("missing always fits");
                    cells += 1;
                }
            }
        }
    }
    (out, cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::is_k_anonymous;
    use tdf_microdata::patients;
    use tdf_microdata::synth::{patients as synth_patients, PatientConfig};

    #[test]
    fn dataset1_needs_no_suppression() {
        let d = patients::dataset1();
        let r = suppress_to_k_anonymity(&d, 3);
        assert_eq!(r.suppressed_cells, 0);
        assert_eq!(r.data, d);
    }

    #[test]
    fn dataset2_becomes_k_anonymous() {
        let d = patients::dataset2();
        let r = suppress_to_k_anonymity(&d, 3);
        assert!(is_k_anonymous(&r.data, 3));
        assert!(r.suppressed_cells > 0);
        // No record is dropped, only cells masked.
        assert_eq!(r.data.num_rows(), 10);
    }

    #[test]
    fn confidential_cells_are_never_suppressed() {
        let d = patients::dataset2();
        let r = suppress_to_k_anonymity(&d, 5);
        for i in 0..d.num_rows() {
            assert_eq!(r.data.value(i, 2), d.value(i, 2));
            assert_eq!(r.data.value(i, 3), d.value(i, 3));
        }
    }

    #[test]
    fn works_on_larger_population() {
        let d = synth_patients(&PatientConfig {
            n: 300,
            ..Default::default()
        });
        for k in [2usize, 5] {
            let r = suppress_to_k_anonymity(&d, k);
            assert!(is_k_anonymous(&r.data, k), "k = {k}");
        }
    }

    #[test]
    fn extreme_k_suppresses_entire_qi() {
        let d = patients::dataset2();
        let r = suppress_to_k_anonymity(&d, 10);
        assert!(is_k_anonymous(&r.data, 10));
        // All ten records must now share the all-missing key.
        assert_eq!(r.suppressed_cells, 20);
    }

    #[test]
    fn empty_dataset_is_a_no_op() {
        let d = Dataset::new(patients::patient_schema());
        let r = suppress_to_k_anonymity(&d, 3);
        assert_eq!(r.suppressed_cells, 0);
        assert!(r.data.is_empty());
    }
}
