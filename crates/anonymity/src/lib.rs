//! # tdf-anonymity
//!
//! Privacy *models* and anonymization *algorithms* for respondent privacy —
//! the first dimension of the paper's framework.
//!
//! Models (checkers over a released dataset):
//!
//! * **k-anonymity** (Samarati–Sweeney [20, 21, 23]) — every combination of
//!   quasi-identifier values is shared by at least `k` records;
//! * **p-sensitive k-anonymity** (Truta–Vinay [24]) — additionally, each
//!   equivalence class exhibits at least `p` distinct values of every
//!   confidential attribute (the paper's footnote 3);
//! * **l-diversity** and **t-closeness** — later refinements included for
//!   completeness of the assessment harness.
//!
//! Algorithms (transformations that *enforce* a model):
//!
//! * full-domain **global recoding** over generalization hierarchies, with
//!   Samarati-style minimal-lattice search [2];
//! * **Mondrian** multidimensional partitioning for numeric
//!   quasi-identifiers;
//! * greedy **local suppression**.
//!
//! Microaggregation — the third route to k-anonymity the paper cites
//! ([1, 10, 12]) — lives in `tdf-sdc` because it doubles as an owner-privacy
//! masking method; `tdf-sdc::microaggregation` documents the equivalence.

pub mod attacks;
pub mod hierarchy;
pub mod model;
pub mod mondrian;
pub mod recoding;
pub mod sensitive;
pub mod suppression;

pub use attacks::homogeneity_attack;
pub use hierarchy::{Hierarchy, TreeHierarchy};
pub use model::{
    entropy_l_diversity_level, is_k_anonymous, k_anonymity_level, l_diversity_level,
    p_sensitivity_level, t_closeness, t_closeness_numeric, EquivalenceClassSummary,
};
pub use mondrian::mondrian_anonymize;
pub use recoding::{apply_recoding, minimal_recoding, RecodingResult};
pub use sensitive::enforce_p_sensitivity;
pub use suppression::suppress_to_k_anonymity;
