//! Attacks on k-anonymous releases: what footnote 3 of the paper warns
//! about, executable.
//!
//! A release can be perfectly k-anonymous and still leak: when an
//! equivalence class is *homogeneous* in a confidential attribute, an
//! intruder who can place a respondent in that class (by quasi-identifier
//! linkage — no re-identification needed!) learns the respondent's
//! sensitive value with certainty. The probabilistic variant reports the
//! intruder's posterior confidence per class and attribute.

use std::collections::HashMap;
use tdf_microdata::column::CellKey;
use tdf_microdata::{Dataset, Value};

/// One homogeneity finding: everyone in the class shares `value` on the
/// confidential attribute `attribute`.
#[derive(Debug, Clone, PartialEq)]
pub struct HomogeneityFinding {
    /// The class's quasi-identifier key.
    pub class_key: Vec<Value>,
    /// Members of the class (row indices).
    pub members: Vec<usize>,
    /// Name of the leaked confidential attribute.
    pub attribute: String,
    /// The shared (leaked) value.
    pub value: Value,
}

/// Runs the homogeneity attack: lists every (class, confidential
/// attribute) pair whose value is constant within the class.
pub fn homogeneity_attack(data: &Dataset) -> Vec<HomogeneityFinding> {
    let conf = data.schema().confidential_indices();
    let views: Vec<_> = conf.iter().map(|&c| data.col(c)).collect();
    let mut findings = Vec::new();
    for (key, members) in data.quasi_identifier_groups() {
        for (&c, view) in conf.iter().zip(&views) {
            let first = members[0];
            if view.is_missing(first) {
                continue;
            }
            // Comparing cells through the column view: integer code /
            // float-bit compares, no `Value` clone per member.
            if members.iter().all(|&i| view.group_eq(first, i)) {
                findings.push(HomogeneityFinding {
                    class_key: key.clone(),
                    members: members.clone(),
                    attribute: data.schema().attribute(c).name.clone(),
                    value: view.get(first),
                });
            }
        }
    }
    findings
}

/// Background-knowledge attack (the l-diversity motivation): an intruder
/// who knows the target's value is *not* `excluded` learns the exact value
/// whenever the target's class contains only one other distinct value.
/// Returns the classes where that happens, with the value leaked to the
/// intruder.
pub fn background_knowledge_attack(
    data: &Dataset,
    conf_col: usize,
    excluded: &Value,
) -> Vec<HomogeneityFinding> {
    let view = data.col(conf_col);
    let mut findings = Vec::new();
    for (key, members) in data.quasi_identifier_groups() {
        // Distinct remaining values, tracked as packed cell keys plus one
        // representative row each (classes are small; a Vec beats a map).
        let mut remaining: Vec<(CellKey, usize)> = Vec::new();
        for &i in &members {
            if view.cmp_value(i, excluded) == std::cmp::Ordering::Equal {
                continue;
            }
            let k = view.key(i);
            if !remaining.iter().any(|&(seen, _)| seen == k) {
                remaining.push((k, i));
            }
        }
        if let [(_, rep)] = remaining[..] {
            if !view.is_missing(rep) {
                findings.push(HomogeneityFinding {
                    class_key: key.clone(),
                    members: members.clone(),
                    attribute: data.schema().attribute(conf_col).name.clone(),
                    value: view.get(rep),
                });
            }
        }
    }
    findings
}

/// The intruder's best posterior per class and confidential attribute:
/// the frequency of the most common sensitive value inside the class.
/// 1.0 = homogeneity (certain disclosure); 1/|class| = perfect diversity.
pub fn attribute_disclosure_confidence(data: &Dataset, conf_col: usize) -> Vec<(Vec<Value>, f64)> {
    let view = data.col(conf_col);
    data.quasi_identifier_groups()
        .into_iter()
        .map(|(key, members)| {
            let mut counts: HashMap<CellKey, usize> = HashMap::new();
            for &i in &members {
                *counts.entry(view.key(i)).or_default() += 1;
            }
            let top = counts.values().copied().max().unwrap_or(0);
            (key, top as f64 / members.len() as f64)
        })
        .collect()
}

/// Summary statistic for the scoring harness: the expected disclosure
/// confidence over respondents (average of each record's class posterior).
pub fn mean_disclosure_confidence(data: &Dataset, conf_col: usize) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let view = data.col(conf_col);
    let mut total = 0.0;
    for members in data.quasi_identifier_groups().into_values() {
        let mut counts: HashMap<CellKey, usize> = HashMap::new();
        for &i in &members {
            *counts.entry(view.key(i)).or_default() += 1;
        }
        // Per-record confidence × class size = the class's top count.
        total += counts.values().copied().max().unwrap_or(0) as f64;
    }
    total / data.num_rows() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use tdf_microdata::patients;
    use tdf_microdata::{AttributeDef, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            AttributeDef::continuous_qi("h"),
            AttributeDef::boolean_confidential("s"),
        ])
        .unwrap()
    }

    #[test]
    fn detects_homogeneous_classes() {
        let d = Dataset::with_rows(
            schema(),
            vec![
                vec![1.0.into(), true.into()],
                vec![1.0.into(), true.into()],
                vec![1.0.into(), true.into()],
                vec![2.0.into(), true.into()],
                vec![2.0.into(), false.into()],
            ],
        )
        .unwrap();
        let findings = homogeneity_attack(&d);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].members, vec![0, 1, 2]);
        assert_eq!(findings[0].attribute, "s");
        assert_eq!(findings[0].value, Value::Bool(true));
    }

    #[test]
    fn dataset1_has_no_homogeneous_class() {
        // The paper's Dataset 1 is 2-sensitive: the attack finds nothing.
        let findings = homogeneity_attack(&patients::dataset1());
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn dataset2_trivially_homogeneous_because_singletons() {
        // Every class of Dataset 2 is a singleton: total homogeneity — the
        // attack view of "not k-anonymous at all".
        let findings = homogeneity_attack(&patients::dataset2());
        // 10 classes × 2 confidential attributes.
        assert_eq!(findings.len(), 20);
    }

    #[test]
    fn confidence_interpolates_between_diversity_and_homogeneity() {
        let d = Dataset::with_rows(
            schema(),
            vec![
                vec![1.0.into(), true.into()],
                vec![1.0.into(), false.into()],
                vec![2.0.into(), true.into()],
                vec![2.0.into(), true.into()],
                vec![2.0.into(), true.into()],
                vec![2.0.into(), false.into()],
            ],
        )
        .unwrap();
        let per_class = attribute_disclosure_confidence(&d, 1);
        let lookup: BTreeMap<String, f64> = per_class
            .into_iter()
            .map(|(k, c)| (format!("{}", k[0]), c))
            .collect();
        assert_eq!(lookup["1"], 0.5);
        assert_eq!(lookup["2"], 0.75);
        let mean = mean_disclosure_confidence(&d, 1);
        // 2 records at 0.5 + 4 at 0.75 = 4/6 ≈ 0.667.
        assert!((mean - (2.0 * 0.5 + 4.0 * 0.75) / 6.0).abs() < 1e-9);
    }

    #[test]
    fn p_sensitivity_enforcement_silences_the_attack() {
        use crate::sensitive::enforce_p_sensitivity;
        let d = Dataset::with_rows(
            schema(),
            vec![
                vec![1.0.into(), true.into()],
                vec![1.0.into(), true.into()],
                vec![2.0.into(), false.into()],
                vec![2.0.into(), true.into()],
            ],
        )
        .unwrap();
        assert_eq!(homogeneity_attack(&d).len(), 1);
        let fixed = enforce_p_sensitivity(&d, 2).unwrap();
        assert!(homogeneity_attack(&fixed.data).is_empty());
    }

    #[test]
    fn background_knowledge_collapses_two_valued_classes() {
        // Dataset 1 is 2-sensitive: the homogeneity attack fails, but an
        // intruder who knows their target does NOT have AIDS learns
        // nothing... while one who knows the target DOES is told the flag
        // exactly — and for a 2-valued attribute, excluding either value
        // determines the other for every class. The attack makes the
        // footnote 3 "stronger property required" argument concrete.
        let d = patients::dataset1();
        let findings = background_knowledge_attack(&d, 3, &Value::Bool(true));
        // All 3 classes have both values; excluding `true` leaves `false`.
        assert_eq!(findings.len(), 3);
        assert!(findings.iter().all(|f| f.value == Value::Bool(false)));
    }

    #[test]
    fn background_knowledge_harmless_with_three_values() {
        use tdf_microdata::{AttributeDef, AttributeKind, AttributeRole, Schema};
        let schema = Schema::new(vec![
            AttributeDef::continuous_qi("q"),
            AttributeDef::new("d", AttributeKind::Nominal, AttributeRole::Confidential),
        ])
        .unwrap();
        let d = Dataset::with_rows(
            schema,
            vec![
                vec![1.0.into(), "flu".into()],
                vec![1.0.into(), "asthma".into()],
                vec![1.0.into(), "diabetes".into()],
            ],
        )
        .unwrap();
        // Excluding one value still leaves two candidates: no finding.
        assert!(background_knowledge_attack(&d, 1, &"flu".into()).is_empty());
    }

    #[test]
    fn empty_dataset_yields_nothing() {
        let d = Dataset::new(schema());
        assert!(homogeneity_attack(&d).is_empty());
        assert_eq!(mean_disclosure_confidence(&d, 1), 0.0);
    }
}
