//! Full-domain global recoding with minimal-lattice search.
//!
//! Every quasi-identifier attribute gets a generalization hierarchy; a
//! *recoding vector* assigns one level per attribute and is applied to all
//! records uniformly (full-domain). The Samarati-style search walks the
//! lattice of vectors by total height and returns a minimum-height vector
//! that achieves k-anonymity, optionally after suppressing up to
//! `max_suppressed` outlier records.

use crate::hierarchy::Hierarchy;
use crate::model::k_anonymity_level;
use tdf_microdata::{AttributeDef, AttributeKind, CatCol, Column, Dataset, Schema, Value};

/// Outcome of a successful lattice search.
#[derive(Debug, Clone)]
pub struct RecodingResult {
    /// Generalization level chosen per quasi-identifier (schema QI order).
    pub levels: Vec<usize>,
    /// The recoded (and possibly row-suppressed) dataset.
    pub data: Dataset,
    /// Number of records suppressed to reach k-anonymity.
    pub suppressed_records: usize,
    /// Original row indices that survived suppression, in release order.
    pub kept_indices: Vec<usize>,
}

/// Applies a recoding vector to `data`.
///
/// Generalized quasi-identifier columns (level > 0) become nominal in the
/// output schema, since intervals and ancestor categories are strings.
pub fn apply_recoding(data: &Dataset, hierarchies: &[Hierarchy], levels: &[usize]) -> Dataset {
    let qi = data.schema().quasi_identifier_indices();
    assert_eq!(
        hierarchies.len(),
        qi.len(),
        "one hierarchy per quasi-identifier"
    );
    assert_eq!(levels.len(), qi.len(), "one level per quasi-identifier");

    let attrs: Vec<AttributeDef> = data
        .schema()
        .attributes()
        .iter()
        .enumerate()
        .map(|(i, a)| {
            if let Some(j) = qi.iter().position(|&q| q == i) {
                if levels[j] > 0 {
                    return AttributeDef::new(a.name.clone(), AttributeKind::Nominal, a.role);
                }
            }
            a.clone()
        })
        .collect();
    let schema = Schema::new(attrs).expect("names unchanged, still unique");

    // Columnwise: untouched columns (non-QI, or QI at level 0) are cloned
    // verbatim — bit-identical, missing bitmap and all — and only the
    // generalized quasi-identifiers are rebuilt, as nominal dictionary
    // columns of bucket labels.
    let columns: Vec<Column> = data
        .columns()
        .iter()
        .enumerate()
        .map(|(i, col)| match qi.iter().position(|&q| q == i) {
            Some(j) if levels[j] > 0 => {
                let mut cat = CatCol::default();
                for r in 0..data.num_rows() {
                    match hierarchies[j].generalize(&data.value(r, i), levels[j]) {
                        Value::Missing => cat.push(None),
                        v => cat.push(Some(&v)),
                    }
                }
                Column::Cat(cat)
            }
            _ => col.clone(),
        })
        .collect();
    Dataset::from_columns(schema, columns).expect("recoded columns align with the recoded schema")
}

/// Removes whole records belonging to equivalence classes smaller than `k`.
fn suppress_small_classes(data: &Dataset, k: usize) -> (Dataset, usize, Vec<usize>) {
    let groups = data.quasi_identifier_groups();
    let mut drop = vec![false; data.num_rows()];
    for members in groups.values() {
        if members.len() < k {
            for &i in members {
                drop[i] = true;
            }
        }
    }
    let kept: Vec<usize> = (0..data.num_rows()).filter(|&i| !drop[i]).collect();
    let suppressed = data.num_rows() - kept.len();
    (data.take(&kept), suppressed, kept)
}

/// Enumerates all level vectors of total height `height`.
fn vectors_of_height(maxes: &[usize], height: usize) -> Vec<Vec<usize>> {
    fn rec(maxes: &[usize], height: usize, prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if maxes.is_empty() {
            if height == 0 {
                out.push(prefix.clone());
            }
            return;
        }
        let cap = maxes[0].min(height);
        for l in 0..=cap {
            prefix.push(l);
            rec(&maxes[1..], height - l, prefix, out);
            prefix.pop();
        }
    }
    let mut out = Vec::new();
    rec(maxes, height, &mut Vec::new(), &mut out);
    out
}

/// Finds a minimum-total-height recoding achieving `k`-anonymity with at
/// most `max_suppressed` records suppressed. Returns `None` only when even
/// full suppression of every quasi-identifier fails (impossible for
/// non-empty data, since one class remains).
pub fn minimal_recoding(
    data: &Dataset,
    hierarchies: &[Hierarchy],
    k: usize,
    max_suppressed: usize,
) -> Option<RecodingResult> {
    let maxes: Vec<usize> = hierarchies.iter().map(Hierarchy::max_level).collect();
    let total: usize = maxes.iter().sum();
    for height in 0..=total {
        for levels in vectors_of_height(&maxes, height) {
            let recoded = apply_recoding(data, hierarchies, &levels);
            let (final_data, suppressed, kept_indices) = suppress_small_classes(&recoded, k);
            if suppressed <= max_suppressed && k_anonymity_level(&final_data).is_none_or(|l| l >= k)
            {
                return Some(RecodingResult {
                    levels,
                    data: final_data,
                    suppressed_records: suppressed,
                    kept_indices,
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::is_k_anonymous;
    use tdf_microdata::patients;

    fn patient_hierarchies() -> Vec<Hierarchy> {
        vec![
            Hierarchy::Interval {
                base_width: 5.0,
                origin: 0.0,
                levels: 3,
            },
            Hierarchy::Interval {
                base_width: 10.0,
                origin: 0.0,
                levels: 3,
            },
        ]
    }

    #[test]
    fn level_zero_recoding_is_identity_on_values() {
        let d = patients::dataset2();
        let r = apply_recoding(&d, &patient_hierarchies(), &[0, 0]);
        assert_eq!(r.num_rows(), d.num_rows());
        assert_eq!(r.value(0, 0), d.value(0, 0));
    }

    #[test]
    fn recoding_makes_dataset2_k_anonymous() {
        let d = patients::dataset2();
        let result = minimal_recoding(&d, &patient_hierarchies(), 3, 0).unwrap();
        assert!(is_k_anonymous(&result.data, 3));
        assert_eq!(result.suppressed_records, 0);
        assert_eq!(result.data.num_rows(), 10);
        // Dataset 2 has unique keys, so at least one attribute must move.
        assert!(result.levels.iter().sum::<usize>() >= 1);
    }

    #[test]
    fn dataset1_needs_no_recoding_for_k3() {
        let d = patients::dataset1();
        let result = minimal_recoding(&d, &patient_hierarchies(), 3, 0).unwrap();
        assert_eq!(result.levels, vec![0, 0]);
        assert_eq!(result.data, d);
    }

    #[test]
    fn suppression_budget_lowers_generalization() {
        let d = patients::dataset2();
        let strict = minimal_recoding(&d, &patient_hierarchies(), 3, 0).unwrap();
        assert_eq!(strict.kept_indices, (0..10).collect::<Vec<_>>());
        let relaxed = minimal_recoding(&d, &patient_hierarchies(), 3, 4).unwrap();
        let strict_height: usize = strict.levels.iter().sum();
        let relaxed_height: usize = relaxed.levels.iter().sum();
        assert!(relaxed_height <= strict_height);
        assert!(is_k_anonymous(&relaxed.data, 3));
    }

    #[test]
    fn generalized_columns_become_nominal() {
        let d = patients::dataset2();
        let r = apply_recoding(&d, &patient_hierarchies(), &[1, 0]);
        assert_eq!(r.schema().attribute(0).kind, AttributeKind::Nominal);
        assert_eq!(r.schema().attribute(1).kind, AttributeKind::Continuous);
        // Confidential attributes are untouched.
        assert_eq!(r.value(0, 2), d.value(0, 2));
    }

    #[test]
    fn vectors_of_height_enumerates_simplex() {
        let v = vectors_of_height(&[2, 2], 2);
        assert!(v.contains(&vec![0, 2]));
        assert!(v.contains(&vec![1, 1]));
        assert!(v.contains(&vec![2, 0]));
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn full_suppression_always_succeeds() {
        let d = patients::dataset2();
        // Requiring k = 10 with zero suppression forces every key to "*".
        let result = minimal_recoding(&d, &patient_hierarchies(), 10, 0).unwrap();
        assert!(is_k_anonymous(&result.data, 10));
    }
}
