//! Enforcement of p-sensitive k-anonymity (Truta–Vinay [24]).
//!
//! The paper's footnote 3: "If records sharing a combination of key
//! attributes in a k-anonymous dataset also share the values for one or
//! more confidential attributes, then k-anonymity does not guarantee
//! respondent privacy" — each equivalence class must also exhibit at least
//! `p` distinct values of every confidential attribute.
//!
//! The enforcement here post-processes any k-anonymous grouping: classes
//! whose confidential diversity is below `p` are *merged* with their
//! nearest neighbouring class (by quasi-identifier centroid) until every
//! class is both large enough and diverse enough; merged classes get a
//! common quasi-identifier centroid, preserving k-anonymity.

use std::collections::HashSet;
use tdf_microdata::{Dataset, Error, Result, Value};

/// Result of a p-sensitivity enforcement pass.
#[derive(Debug, Clone)]
pub struct PSensitiveResult {
    /// The adjusted dataset (k-anonymous and p-sensitive).
    pub data: Dataset,
    /// Number of class merges performed.
    pub merges: usize,
}

fn class_diversity(data: &Dataset, members: &[usize], conf: &[usize]) -> usize {
    conf.iter()
        .map(|&c| {
            let view = data.col(c);
            members
                .iter()
                .map(|&i| view.key(i))
                .collect::<HashSet<_>>()
                .len()
        })
        .min()
        .unwrap_or(usize::MAX)
}

fn centroid(data: &Dataset, members: &[usize], qi: &[usize]) -> Vec<f64> {
    qi.iter()
        .map(|&c| {
            let view = data.col(c);
            members.iter().filter_map(|&i| view.f64(i)).sum::<f64>() / members.len() as f64
        })
        .collect()
}

/// Merges under-diverse equivalence classes of an (already k-anonymous)
/// dataset until every class has at least `p` distinct values of every
/// confidential attribute. Quasi-identifiers must be numeric (merged
/// classes receive their joint centroid).
///
/// Errors when `p` exceeds the global diversity of some confidential
/// attribute (no grouping can ever satisfy it).
pub fn enforce_p_sensitivity(data: &Dataset, p: usize) -> Result<PSensitiveResult> {
    if p == 0 {
        return Err(Error::InvalidParameter("p must be at least 1".into()));
    }
    let conf = data.schema().confidential_indices();
    if conf.is_empty() {
        return Err(Error::InvalidParameter(
            "p-sensitivity needs at least one confidential attribute".into(),
        ));
    }
    let all: Vec<usize> = (0..data.num_rows()).collect();
    if data.is_empty() {
        return Ok(PSensitiveResult {
            data: data.clone(),
            merges: 0,
        });
    }
    if class_diversity(data, &all, &conf) < p {
        return Err(Error::InvalidParameter(format!(
            "the dataset has fewer than {p} distinct values of some confidential attribute"
        )));
    }
    let qi: Vec<usize> = data
        .schema()
        .quasi_identifier_indices()
        .into_iter()
        .filter(|&c| data.schema().attribute(c).kind.is_numeric())
        .collect();

    // Start from the current equivalence classes.
    let mut classes: Vec<Vec<usize>> = data.quasi_identifier_groups().into_values().collect();
    let mut merges = 0usize;

    loop {
        // Find an under-diverse class.
        let offender = classes
            .iter()
            .position(|members| class_diversity(data, members, &conf) < p);
        let offender = match offender {
            Some(i) => i,
            None => break,
        };
        if classes.len() == 1 {
            // Single class but still under-diverse: impossible, caught by
            // the global check above.
            unreachable!("global diversity check guarantees feasibility");
        }
        // Merge with the nearest class by QI centroid.
        let c0 = centroid(data, &classes[offender], &qi);
        let (nearest, _) = classes
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != offender)
            .map(|(i, members)| {
                let c1 = centroid(data, members, &qi);
                let d: f64 = c0.iter().zip(&c1).map(|(a, b)| (a - b) * (a - b)).sum();
                (i, d)
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("at least two classes");
        let absorbed = classes.remove(nearest);
        // Removing `nearest` shifts `offender` down when it sat above it.
        let keep_idx = if nearest > offender {
            offender
        } else {
            offender - 1
        };
        classes[keep_idx].extend(absorbed);
        merges += 1;
    }

    // Re-materialize: every class gets its centroid on the numeric QIs.
    let mut out = data.clone();
    for members in &classes {
        let c = centroid(data, members, &qi);
        for &i in members {
            for (j, &col) in qi.iter().enumerate() {
                out.set_value(i, col, Value::Float(c[j]))?;
            }
        }
    }
    Ok(PSensitiveResult { data: out, merges })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{k_anonymity_level, p_sensitivity_level};
    use tdf_microdata::{AttributeDef, Schema};

    /// A 3-anonymous dataset whose first class is confidentially
    /// homogeneous (all share the sensitive flag) — the footnote 3 hazard.
    fn homogeneous_dataset() -> Dataset {
        let schema = Schema::new(vec![
            AttributeDef::continuous_qi("h"),
            AttributeDef::continuous_qi("w"),
            AttributeDef::boolean_confidential("s"),
        ])
        .unwrap();
        Dataset::with_rows(
            schema,
            vec![
                vec![170.0.into(), 70.0.into(), true.into()],
                vec![170.0.into(), 70.0.into(), true.into()],
                vec![170.0.into(), 70.0.into(), true.into()],
                vec![180.0.into(), 90.0.into(), false.into()],
                vec![180.0.into(), 90.0.into(), true.into()],
                vec![180.0.into(), 90.0.into(), false.into()],
            ],
        )
        .unwrap()
    }

    #[test]
    fn detects_and_repairs_the_footnote3_hazard() {
        let d = homogeneous_dataset();
        assert_eq!(k_anonymity_level(&d), Some(3));
        assert_eq!(p_sensitivity_level(&d), Some(1), "class 1 is homogeneous");
        let fixed = enforce_p_sensitivity(&d, 2).unwrap();
        assert!(fixed.merges >= 1);
        assert!(p_sensitivity_level(&fixed.data).unwrap() >= 2);
        // Merging never breaks k-anonymity (classes only grow).
        assert!(k_anonymity_level(&fixed.data).unwrap() >= 3);
    }

    #[test]
    fn already_sensitive_data_is_untouched() {
        let d = tdf_microdata::patients::dataset1();
        assert_eq!(p_sensitivity_level(&d), Some(2));
        let r = enforce_p_sensitivity(&d, 2).unwrap();
        assert_eq!(r.merges, 0);
        assert_eq!(r.data, d);
    }

    #[test]
    fn impossible_p_is_rejected() {
        let d = homogeneous_dataset();
        // Only two distinct values of `s` exist globally.
        assert!(enforce_p_sensitivity(&d, 3).is_err());
        assert!(enforce_p_sensitivity(&d, 0).is_err());
    }

    #[test]
    fn works_on_synthetic_patients() {
        use tdf_microdata::synth::{patients, PatientConfig};
        use tdf_sdc_shim::mdav;
        // Microaggregate first, then enforce sensitivity on the AIDS flag.
        let data = patients(&PatientConfig {
            n: 120,
            ..Default::default()
        });
        let masked = mdav(&data, 4);
        let fixed = enforce_p_sensitivity(&masked, 2).unwrap();
        assert!(p_sensitivity_level(&fixed.data).unwrap() >= 2);
        assert!(k_anonymity_level(&fixed.data).unwrap() >= 4);
    }

    /// Minimal local microaggregation so this crate's tests need not
    /// depend on `tdf-sdc` (which depends on us).
    mod tdf_sdc_shim {
        use super::*;
        pub fn mdav(data: &Dataset, k: usize) -> Dataset {
            // Cheap k-anonymizer: sort by height, group consecutive k.
            let mut order: Vec<usize> = (0..data.num_rows()).collect();
            order.sort_by(|&a, &b| {
                data.value(a, 0)
                    .as_f64()
                    .unwrap()
                    .total_cmp(&data.value(b, 0).as_f64().unwrap())
            });
            let mut out = data.clone();
            let mut i = 0;
            while i < order.len() {
                let take = if order.len() - i < 2 * k {
                    order.len() - i
                } else {
                    k
                };
                let members = &order[i..i + take];
                for col in [0usize, 1] {
                    let mean = members
                        .iter()
                        .map(|&m| data.value(m, col).as_f64().unwrap())
                        .sum::<f64>()
                        / take as f64;
                    for &m in members {
                        out.set_value(m, col, Value::Float(mean)).unwrap();
                    }
                }
                i += take;
            }
            out
        }
    }
}
