//! Checkers for respondent-privacy models.

use std::collections::{BTreeSet, HashSet};
use tdf_microdata::column::CellKey;
use tdf_microdata::{Dataset, Value};

/// Summary of one equivalence class (records sharing a quasi-identifier
/// combination), in the style of the paper's Table 1 analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct EquivalenceClassSummary {
    /// The shared quasi-identifier values.
    pub key: Vec<Value>,
    /// Row indices of the members.
    pub members: Vec<usize>,
    /// For each confidential attribute (schema order), the number of
    /// distinct values inside the class.
    pub distinct_confidential: Vec<usize>,
}

/// Per-class breakdown of a dataset w.r.t. its quasi-identifiers.
pub fn equivalence_classes(data: &Dataset) -> Vec<EquivalenceClassSummary> {
    let conf = data.schema().confidential_indices();
    let views: Vec<_> = conf.iter().map(|&c| data.col(c)).collect();
    data.quasi_identifier_groups()
        .into_iter()
        .map(|(key, members)| {
            // Distinct counts on packed cell keys: no `Value` clones.
            let distinct_confidential = views
                .iter()
                .map(|view| {
                    members
                        .iter()
                        .map(|&i| view.key(i))
                        .collect::<HashSet<CellKey>>()
                        .len()
                })
                .collect();
            EquivalenceClassSummary {
                key,
                members,
                distinct_confidential,
            }
        })
        .collect()
}

/// The k-anonymity level of a dataset: the size of its smallest
/// equivalence class. `None` for an empty dataset (vacuously anonymous).
pub fn k_anonymity_level(data: &Dataset) -> Option<usize> {
    data.quasi_identifier_groups().values().map(Vec::len).min()
}

/// True when every equivalence class has at least `k` members.
///
/// The paper's Dataset 1 "spontaneously satisfies k-anonymity for k = 3";
/// Dataset 2 does not.
/// ```
/// use tdf_microdata::patients;
/// use tdf_anonymity::is_k_anonymous;
///
/// assert!(is_k_anonymous(&patients::dataset1(), 3));  // Table 1, left
/// assert!(!is_k_anonymous(&patients::dataset2(), 3)); // Table 1, right
/// ```
pub fn is_k_anonymous(data: &Dataset, k: usize) -> bool {
    k_anonymity_level(data).is_none_or(|level| level >= k)
}

/// The p-sensitivity level: the minimum, over equivalence classes and
/// confidential attributes, of the number of distinct confidential values
/// in the class (Truta–Vinay [24], the paper's footnote 3). `None` when the
/// dataset is empty or has no confidential attributes.
pub fn p_sensitivity_level(data: &Dataset) -> Option<usize> {
    if data.schema().confidential_indices().is_empty() {
        return None;
    }
    equivalence_classes(data)
        .iter()
        .flat_map(|c| c.distinct_confidential.iter().copied())
        .min()
}

/// Distinct l-diversity level of a single confidential attribute `conf_col`:
/// the minimum number of distinct sensitive values per equivalence class.
pub fn l_diversity_level(data: &Dataset, conf_col: usize) -> Option<usize> {
    let view = data.col(conf_col);
    let groups = data.quasi_identifier_groups();
    groups
        .values()
        .map(|members| {
            members
                .iter()
                .map(|&i| view.key(i))
                .collect::<HashSet<CellKey>>()
                .len()
        })
        .min()
}

/// Entropy l-diversity level of confidential attribute `conf_col`:
/// `min over classes of 2^H(class distribution)` — the effective number of
/// sensitive values an intruder must still discriminate between. Stricter
/// than distinct l-diversity when one value dominates a class.
pub fn entropy_l_diversity_level(data: &Dataset, conf_col: usize) -> Option<f64> {
    let view = data.col(conf_col);
    let groups = data.quasi_identifier_groups();
    groups
        .values()
        .map(|members| {
            let mut counts: std::collections::HashMap<CellKey, usize> =
                std::collections::HashMap::new();
            for &i in members {
                *counts.entry(view.key(i)).or_default() += 1;
            }
            let n = members.len() as f64;
            let entropy: f64 = counts
                .values()
                .map(|&c| {
                    let p = c as f64 / n;
                    -p * p.log2()
                })
                .sum();
            entropy.exp2()
        })
        .fold(None, |acc: Option<f64>, l| {
            Some(acc.map_or(l, |a| a.min(l)))
        })
}

/// t-closeness of a *numeric* confidential attribute: the maximum, over
/// equivalence classes, of the ordered earth-mover's distance between the
/// class's value distribution and the global one, computed on value ranks
/// (the normalization of the original t-closeness paper for numeric data).
pub fn t_closeness_numeric(data: &Dataset, conf_col: usize) -> Option<f64> {
    if data.is_empty() {
        return None;
    }
    let view = data.col(conf_col);
    // Global sorted values define the rank scale.
    let mut global: Vec<f64> = data.numeric_column(conf_col);
    if global.is_empty() {
        return None;
    }
    global.sort_by(f64::total_cmp);
    let m = global.len();
    let rank_of = |x: f64| -> f64 {
        // Position of x in the global order, averaged over ties.
        let lo = global.partition_point(|&v| v < x);
        let hi = global.partition_point(|&v| v <= x);
        (lo + hi) as f64 / 2.0 / m as f64
    };
    let emd = |members: &[usize]| -> f64 {
        // Ordered EMD between the class's rank distribution and uniform:
        // mean absolute deviation of cumulative sums.
        let mut ranks: Vec<f64> = members
            .iter()
            .filter_map(|&i| view.f64(i))
            .map(rank_of)
            .collect();
        if ranks.is_empty() {
            return 0.0;
        }
        ranks.sort_by(f64::total_cmp);
        let k = ranks.len() as f64;
        // The class's j-th order statistic should sit near (j+0.5)/k of
        // the global rank scale; the mean |gap| is the transport cost.
        ranks
            .iter()
            .enumerate()
            .map(|(j, &r)| (r - (j as f64 + 0.5) / k).abs())
            .sum::<f64>()
            / k
    };
    data.quasi_identifier_groups()
        .values()
        .map(|members| emd(members))
        .fold(None, |acc: Option<f64>, d| {
            Some(acc.map_or(d, |a| a.max(d)))
        })
}

/// t-closeness of a categorical/boolean confidential attribute: the maximum,
/// over equivalence classes, of the total-variation distance between the
/// class's sensitive-value distribution and the global one. `None` for an
/// empty dataset. Lower is better; a dataset is "t-close" when the returned
/// value is ≤ t.
pub fn t_closeness(data: &Dataset, conf_col: usize) -> Option<f64> {
    if data.is_empty() {
        return None;
    }
    let view = data.col(conf_col);
    // Sorted value domain, tracked as (value, packed key) so per-member
    // lookups compare packed keys instead of cloned `Value`s.
    let domain: Vec<(Value, CellKey)> = {
        let mut set = BTreeSet::new();
        for i in 0..data.num_rows() {
            set.insert(data.value(i, conf_col));
        }
        set.into_iter()
            .map(|v| {
                let rep = (0..data.num_rows())
                    .find(|&i| view.cmp_value(i, &v) == std::cmp::Ordering::Equal)
                    .expect("domain value present");
                (v, view.key(rep))
            })
            .collect()
    };
    let dist = |members: &[usize]| -> Vec<f64> {
        let mut counts = vec![0usize; domain.len()];
        for &i in members {
            let k = view.key(i);
            let pos = domain
                .iter()
                .position(|&(_, dk)| dk == k)
                .expect("value in domain");
            counts[pos] += 1;
        }
        counts
            .iter()
            .map(|&c| c as f64 / members.len() as f64)
            .collect()
    };
    let all: Vec<usize> = (0..data.num_rows()).collect();
    let global = dist(&all);
    data.quasi_identifier_groups()
        .values()
        .map(|members| {
            let local = dist(members);
            0.5 * local
                .iter()
                .zip(&global)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
        })
        .fold(None, |acc: Option<f64>, d| {
            Some(acc.map_or(d, |a| a.max(d)))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdf_microdata::patients;

    #[test]
    fn table1_dataset1_is_3_anonymous_as_the_paper_states() {
        let d = patients::dataset1();
        assert_eq!(k_anonymity_level(&d), Some(3));
        assert!(is_k_anonymous(&d, 3));
        assert!(is_k_anonymous(&d, 2));
        assert!(!is_k_anonymous(&d, 4));
    }

    #[test]
    fn table1_dataset2_is_not_3_anonymous_as_the_paper_states() {
        let d = patients::dataset2();
        assert_eq!(k_anonymity_level(&d), Some(1));
        assert!(!is_k_anonymous(&d, 3));
        assert!(is_k_anonymous(&d, 1));
    }

    #[test]
    fn dataset1_is_2_sensitive() {
        // Footnote 3 of the paper: k-anonymity alone does not protect when
        // a class shares one confidential value. Dataset 1 happens to have
        // 2 distinct AIDS values in every class.
        let d = patients::dataset1();
        let p = p_sensitivity_level(&d).unwrap();
        assert_eq!(p, 2);
    }

    #[test]
    fn empty_dataset_is_vacuously_anonymous() {
        let d = Dataset::new(patients::patient_schema());
        assert_eq!(k_anonymity_level(&d), None);
        assert!(is_k_anonymous(&d, 100));
        assert_eq!(p_sensitivity_level(&d), None);
        assert_eq!(t_closeness(&d, 3), None);
    }

    #[test]
    fn equivalence_class_summaries_match_groups() {
        let d = patients::dataset1();
        let classes = equivalence_classes(&d);
        assert_eq!(classes.len(), 3);
        let sizes: Vec<usize> = classes.iter().map(|c| c.members.len()).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![3, 3, 4]);
        // Each summary reports distinct counts for bp and aids.
        for c in &classes {
            assert_eq!(c.distinct_confidential.len(), 2);
            assert!(c.distinct_confidential[0] >= 1);
        }
    }

    #[test]
    fn l_diversity_of_aids_in_dataset1() {
        let d = patients::dataset1();
        // AIDS column index 3: every class has both Y and N → l = 2.
        assert_eq!(l_diversity_level(&d, 3), Some(2));
        // Blood pressure is distinct everywhere → l = class size.
        assert_eq!(l_diversity_level(&d, 2), Some(3));
    }

    #[test]
    fn entropy_l_diversity_penalizes_skew() {
        use tdf_microdata::{AttributeDef, Schema};
        let schema = Schema::new(vec![
            AttributeDef::continuous_qi("q"),
            AttributeDef::boolean_confidential("s"),
        ])
        .unwrap();
        // Class A: 50/50 split (entropy 1 bit -> level 2). Class B: 3/1
        // split (entropy 0.811 -> level ~1.75). Distinct l-diversity sees
        // 2 everywhere; entropy l-diversity sees the skew.
        let d = Dataset::with_rows(
            schema,
            vec![
                vec![1.0.into(), true.into()],
                vec![1.0.into(), false.into()],
                vec![2.0.into(), true.into()],
                vec![2.0.into(), true.into()],
                vec![2.0.into(), true.into()],
                vec![2.0.into(), false.into()],
            ],
        )
        .unwrap();
        assert_eq!(l_diversity_level(&d, 1), Some(2));
        let e = entropy_l_diversity_level(&d, 1).unwrap();
        assert!(e < 2.0 && e > 1.5, "entropy level {e}");
    }

    #[test]
    fn numeric_t_closeness_flags_clustered_classes() {
        use tdf_microdata::{AttributeDef, Schema};
        let schema = Schema::new(vec![
            AttributeDef::continuous_qi("q"),
            AttributeDef::continuous_confidential("s"),
        ])
        .unwrap();
        // Well-mixed: each class interleaves with the global order.
        let mixed = Dataset::with_rows(
            schema.clone(),
            (0..8)
                .map(|i| vec![((i % 2) as f64 + 1.0).into(), (100.0 + i as f64).into()])
                .collect(),
        )
        .unwrap();
        // Clustered: one class holds all the largest values.
        let clustered = Dataset::with_rows(
            schema,
            (0..8)
                .map(|i| {
                    let class = if i < 4 { 1.0 } else { 2.0 };
                    vec![class.into(), (100.0 + i as f64).into()]
                })
                .collect(),
        )
        .unwrap();
        let good = t_closeness_numeric(&mixed, 1).unwrap();
        let bad = t_closeness_numeric(&clustered, 1).unwrap();
        assert!(good < 0.1, "mixed classes should be close: {good}");
        assert!(bad > good + 0.1, "clustered {bad} vs mixed {good}");
        // The paper's Dataset 1 sits in between (small classes, real data).
        let d1 = t_closeness_numeric(&patients::dataset1(), 2).unwrap();
        assert!((0.0..=0.5).contains(&d1), "dataset1 t-closeness {d1}");
    }

    #[test]
    fn t_closeness_zero_when_classes_mirror_global() {
        use tdf_microdata::{AttributeDef, Schema};
        let schema = Schema::new(vec![
            AttributeDef::continuous_qi("q"),
            AttributeDef::boolean_confidential("s"),
        ])
        .unwrap();
        let d = Dataset::with_rows(
            schema,
            vec![
                vec![1.0.into(), true.into()],
                vec![1.0.into(), false.into()],
                vec![2.0.into(), true.into()],
                vec![2.0.into(), false.into()],
            ],
        )
        .unwrap();
        assert!(t_closeness(&d, 1).unwrap() < 1e-12);
    }

    #[test]
    fn t_closeness_large_for_homogeneous_classes() {
        use tdf_microdata::{AttributeDef, Schema};
        let schema = Schema::new(vec![
            AttributeDef::continuous_qi("q"),
            AttributeDef::boolean_confidential("s"),
        ])
        .unwrap();
        let d = Dataset::with_rows(
            schema,
            vec![
                vec![1.0.into(), true.into()],
                vec![1.0.into(), true.into()],
                vec![2.0.into(), false.into()],
                vec![2.0.into(), false.into()],
            ],
        )
        .unwrap();
        // Each class is pure while the global split is 50/50 → distance 0.5.
        assert!((t_closeness(&d, 1).unwrap() - 0.5).abs() < 1e-12);
    }
}
