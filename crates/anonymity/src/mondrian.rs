//! Mondrian multidimensional partitioning for numeric quasi-identifiers.
//!
//! Recursively splits the record set along the quasi-identifier dimension
//! with the widest (normalized) range, at the median, as long as both sides
//! keep at least `k` records; each final partition is then made uniform by
//! replacing members' quasi-identifier values with the partition centroid.
//! The result is k-anonymous by construction and numerically analysable
//! (unlike interval recoding, the output stays numeric).

use tdf_microdata::column::F64Cells;
use tdf_microdata::Dataset;

/// Result of a Mondrian run.
#[derive(Debug, Clone)]
pub struct MondrianResult {
    /// The anonymized dataset (same schema as the input).
    pub data: Dataset,
    /// Partition id per record (for inspection and tests).
    pub partition_of: Vec<usize>,
    /// Number of final partitions.
    pub num_partitions: usize,
}

/// Runs strict Mondrian with parameter `k` on the numeric quasi-identifiers
/// of `data`. Panics when `k` is zero; returns the dataset unchanged (one
/// partition) when it has fewer than `2k` records.
pub fn mondrian_anonymize(data: &Dataset, k: usize) -> MondrianResult {
    assert!(k >= 1, "k must be at least 1");
    let qi: Vec<usize> = data
        .schema()
        .quasi_identifier_indices()
        .into_iter()
        .filter(|&c| data.schema().attribute(c).kind.is_numeric())
        .collect();

    // One contiguous numeric reader per QI column, hoisted for the whole
    // recursion: the range/median scans below never materialize a `Value`.
    let cells: Vec<F64Cells> = qi
        .iter()
        .map(|&c| data.f64_cells(c).expect("numeric column"))
        .collect();

    let _span = obs::span("anonymity.mondrian");
    let mut partitions: Vec<Vec<usize>> = Vec::new();
    let all: Vec<usize> = (0..data.num_rows()).collect();
    let mut stats = SplitStats::default();
    split(&cells, k, all, 0, &mut partitions, &mut stats);
    obs::count("anonymity.mondrian.partitions", partitions.len() as u64);
    obs::count("anonymity.mondrian.splits", stats.splits);
    obs::gauge_max("anonymity.mondrian.max_depth", stats.max_depth);

    let mut out = data.clone();
    let mut partition_of = vec![0usize; data.num_rows()];
    for (pid, members) in partitions.iter().enumerate() {
        for (&col, col_cells) in qi.iter().zip(&cells) {
            let mean = members
                .iter()
                .filter_map(|&i| col_cells.get(i))
                .sum::<f64>()
                / members.len() as f64;
            let dst = out.float_col_mut(col).expect("numeric column");
            for &i in members {
                dst.set(i, Some(mean));
            }
        }
        for &i in members {
            partition_of[i] = pid;
        }
    }
    let num_partitions = partitions.len();
    MondrianResult {
        data: out,
        partition_of,
        num_partitions,
    }
}

/// Split/depth tallies accumulated locally during the recursion and
/// flushed to the observability registry once per Mondrian run — the
/// partitioning loop is too hot for a per-node registry write.
#[derive(Default)]
struct SplitStats {
    splits: u64,
    max_depth: u64,
}

impl SplitStats {
    fn leaf_at(&mut self, depth: usize) {
        self.max_depth = self.max_depth.max(depth as u64);
    }
}

/// `depth` is the recursion depth of this call (0 at the root); the max
/// over leaves is the tree depth (every maximal path ends in a leaf).
fn split(
    cells: &[F64Cells],
    k: usize,
    members: Vec<usize>,
    depth: usize,
    out: &mut Vec<Vec<usize>>,
    stats: &mut SplitStats,
) {
    if members.len() < 2 * k || cells.is_empty() {
        stats.leaf_at(depth);
        out.push(members);
        return;
    }
    // Pick the dimension with the widest normalized range. The per-column
    // (min, max) scan over members runs in parallel; `f64::min`/`f64::max`
    // merges are exact, so the extrema — and therefore the chosen split —
    // do not depend on chunking or thread count.
    let mut best: Option<(usize, f64)> = None;
    for (j, col_cells) in cells.iter().enumerate() {
        let (lo, hi) = par::par_chunks_reduce(
            &members,
            0,
            |chunk| {
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                for &i in chunk {
                    if let Some(v) = col_cells.get(i) {
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                }
                (lo, hi)
            },
            |a, b| (a.0.min(b.0), a.1.max(b.1)),
        )
        .expect("members is non-empty");
        if hi < lo {
            // No numeric values in this column.
            continue;
        }
        let range = hi - lo;
        if best.is_none_or(|(_, r)| range > r) {
            best = Some((j, range));
        }
    }
    let (j, range) = match best {
        Some(b) => b,
        None => {
            stats.leaf_at(depth);
            out.push(members);
            return;
        }
    };
    if range <= 0.0 {
        // All quasi-identifier values equal: nothing to split on.
        stats.leaf_at(depth);
        out.push(members);
        return;
    }

    // Median split on the chosen dimension.
    let split_cells = &cells[j];
    let mut sorted = members.clone();
    sorted.sort_by(|&a, &b| {
        split_cells
            .get(a)
            .unwrap_or(f64::NAN)
            .total_cmp(&split_cells.get(b).unwrap_or(f64::NAN))
    });
    let mid = sorted.len() / 2;
    let (left, right) = sorted.split_at(mid);
    if left.len() < k || right.len() < k {
        stats.leaf_at(depth);
        out.push(members);
        return;
    }
    stats.splits += 1;
    split(cells, k, left.to_vec(), depth + 1, out, stats);
    split(cells, k, right.to_vec(), depth + 1, out, stats);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{is_k_anonymous, k_anonymity_level};
    use tdf_microdata::patients as table1;
    use tdf_microdata::synth::{patients, PatientConfig};

    #[test]
    fn output_is_k_anonymous() {
        let d = patients(&PatientConfig {
            n: 500,
            ..Default::default()
        });
        for k in [2usize, 3, 5, 10] {
            let r = mondrian_anonymize(&d, k);
            assert!(
                is_k_anonymous(&r.data, k),
                "k = {k}, level = {:?}",
                k_anonymity_level(&r.data)
            );
        }
    }

    #[test]
    fn partitions_have_at_least_k_members() {
        let d = patients(&PatientConfig {
            n: 333,
            ..Default::default()
        });
        let k = 7;
        let r = mondrian_anonymize(&d, k);
        let mut counts = vec![0usize; r.num_partitions];
        for &p in &r.partition_of {
            counts[p] += 1;
        }
        assert!(counts.iter().all(|&c| c >= k), "{counts:?}");
        assert_eq!(counts.iter().sum::<usize>(), 333);
    }

    #[test]
    fn confidential_attributes_survive_unchanged() {
        let d = table1::dataset2();
        let r = mondrian_anonymize(&d, 3);
        for i in 0..d.num_rows() {
            assert_eq!(r.data.value(i, 2), d.value(i, 2));
            assert_eq!(r.data.value(i, 3), d.value(i, 3));
        }
        assert!(is_k_anonymous(&r.data, 3));
    }

    #[test]
    fn small_dataset_collapses_to_one_partition() {
        let d = table1::dataset2();
        let r = mondrian_anonymize(&d, 6); // 10 < 2·6
        assert_eq!(r.num_partitions, 1);
        assert!(is_k_anonymous(&r.data, 10));
    }

    #[test]
    fn more_partitions_with_smaller_k() {
        let d = patients(&PatientConfig {
            n: 400,
            ..Default::default()
        });
        let r2 = mondrian_anonymize(&d, 2);
        let r20 = mondrian_anonymize(&d, 20);
        assert!(r2.num_partitions > r20.num_partitions);
    }

    #[test]
    fn centroids_preserve_column_means() {
        let d = patients(&PatientConfig {
            n: 256,
            ..Default::default()
        });
        let r = mondrian_anonymize(&d, 4);
        for col in [0usize, 1] {
            let orig = tdf_microdata::stats::mean(&d.numeric_column(col)).unwrap();
            let masked = tdf_microdata::stats::mean(&r.data.numeric_column(col)).unwrap();
            assert!(
                (orig - masked).abs() < 1e-6,
                "col {col}: {orig} vs {masked}"
            );
        }
    }

    #[test]
    fn partitioning_is_identical_across_thread_counts() {
        let d = patients(&PatientConfig {
            n: 300,
            ..Default::default()
        });
        let run = |t: usize| par::with_threads(t, || mondrian_anonymize(&d, 5));
        let (a, b) = (run(1), run(4));
        assert_eq!(a.partition_of, b.partition_of);
        assert_eq!(a.num_partitions, b.num_partitions);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_panics() {
        let _ = mondrian_anonymize(&table1::dataset1(), 0);
    }
}
