//! Generalization hierarchies for global recoding.
//!
//! A hierarchy maps an attribute value to coarser and coarser versions:
//! level 0 is the value itself and the top level is full suppression
//! (`"*"`). Numeric attributes use interval hierarchies whose bin width
//! doubles per level; categorical attributes use explicit trees.

use std::collections::BTreeMap;
use tdf_microdata::Value;

/// A value-generalization hierarchy.
#[derive(Debug, Clone)]
pub enum Hierarchy {
    /// Numeric intervals: level `l` (1-based) buckets values into bins of
    /// width `base_width · 2^(l−1)` aligned at `origin`; the top level
    /// suppresses.
    Interval {
        /// Bin width at level 1.
        base_width: f64,
        /// Alignment origin of the bins.
        origin: f64,
        /// Number of interval levels before suppression; total levels are
        /// `levels + 1` (the last being `"*"`).
        levels: usize,
    },
    /// Explicit category tree.
    Tree(TreeHierarchy),
}

/// A categorical hierarchy given by per-level ancestor maps.
#[derive(Debug, Clone)]
pub struct TreeHierarchy {
    /// `maps[l]` sends an original value to its generalization at level
    /// `l + 1`; values absent from a map generalize to `"*"`.
    maps: Vec<BTreeMap<String, String>>,
}

impl TreeHierarchy {
    /// Builds from `(leaf, ancestors)` pairs: `ancestors[l]` is the leaf's
    /// generalization at level `l + 1`. All leaves must list the same
    /// number of ancestors.
    pub fn new(entries: &[(&str, &[&str])]) -> Self {
        let depth = entries.first().map_or(0, |(_, a)| a.len());
        assert!(
            entries.iter().all(|(_, a)| a.len() == depth),
            "all leaves must have the same ancestor depth"
        );
        let mut maps = vec![BTreeMap::new(); depth];
        for (leaf, ancestors) in entries {
            for (l, anc) in ancestors.iter().enumerate() {
                maps[l].insert((*leaf).to_owned(), (*anc).to_owned());
            }
        }
        Self { maps }
    }

    /// Number of tree levels before suppression.
    pub fn depth(&self) -> usize {
        self.maps.len()
    }
}

impl Hierarchy {
    /// Maximum generalization level (at which every value becomes `"*"`).
    pub fn max_level(&self) -> usize {
        match self {
            Hierarchy::Interval { levels, .. } => levels + 1,
            Hierarchy::Tree(t) => t.depth() + 1,
        }
    }

    /// Generalizes `value` to `level`. Level 0 returns the value verbatim
    /// (rendered as a string for uniformity at levels > 0); missing values
    /// stay missing.
    pub fn generalize(&self, value: &Value, level: usize) -> Value {
        if value.is_missing() {
            return Value::Missing;
        }
        if level == 0 {
            return value.clone();
        }
        if level >= self.max_level() {
            return Value::Str("*".to_owned());
        }
        match self {
            Hierarchy::Interval {
                base_width, origin, ..
            } => {
                let x = match value.as_f64() {
                    Some(x) => x,
                    None => return Value::Str("*".to_owned()),
                };
                let width = base_width * (1u64 << (level - 1)) as f64;
                let bin = ((x - origin) / width).floor();
                let lo = origin + bin * width;
                let hi = lo + width;
                Value::Str(format!("[{lo},{hi})"))
            }
            Hierarchy::Tree(t) => {
                let s = match value {
                    Value::Str(s) => s.clone(),
                    other => other.to_string(),
                };
                match t.maps[level - 1].get(&s) {
                    Some(anc) => Value::Str(anc.clone()),
                    None => Value::Str("*".to_owned()),
                }
            }
        }
    }
}

/// A convenient interval hierarchy for ages: 5-year bins, then 10, 20, 40,
/// then suppression.
pub fn age_hierarchy() -> Hierarchy {
    Hierarchy::Interval {
        base_width: 5.0,
        origin: 0.0,
        levels: 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_levels_double() {
        let h = Hierarchy::Interval {
            base_width: 5.0,
            origin: 0.0,
            levels: 3,
        };
        assert_eq!(h.max_level(), 4);
        assert_eq!(h.generalize(&Value::Float(23.0), 0), Value::Float(23.0));
        assert_eq!(
            h.generalize(&Value::Float(23.0), 1),
            Value::Str("[20,25)".into())
        );
        assert_eq!(
            h.generalize(&Value::Float(23.0), 2),
            Value::Str("[20,30)".into())
        );
        assert_eq!(
            h.generalize(&Value::Float(23.0), 3),
            Value::Str("[20,40)".into())
        );
        assert_eq!(h.generalize(&Value::Float(23.0), 4), Value::Str("*".into()));
        assert_eq!(
            h.generalize(&Value::Float(23.0), 99),
            Value::Str("*".into())
        );
    }

    #[test]
    fn interval_respects_origin() {
        let h = Hierarchy::Interval {
            base_width: 10.0,
            origin: 5.0,
            levels: 1,
        };
        assert_eq!(h.generalize(&Value::Int(7), 1), Value::Str("[5,15)".into()));
        assert_eq!(h.generalize(&Value::Int(4), 1), Value::Str("[-5,5)".into()));
    }

    #[test]
    fn tree_generalization() {
        let h = Hierarchy::Tree(TreeHierarchy::new(&[
            ("flu", &["respiratory", "any"]),
            ("asthma", &["respiratory", "any"]),
            ("diabetes", &["metabolic", "any"]),
        ]));
        assert_eq!(h.max_level(), 3);
        assert_eq!(
            h.generalize(&Value::Str("flu".into()), 1),
            Value::Str("respiratory".into())
        );
        assert_eq!(
            h.generalize(&Value::Str("diabetes".into()), 2),
            Value::Str("any".into())
        );
        assert_eq!(
            h.generalize(&Value::Str("flu".into()), 3),
            Value::Str("*".into())
        );
        // Unknown leaves generalize safely to "*".
        assert_eq!(
            h.generalize(&Value::Str("??".into()), 1),
            Value::Str("*".into())
        );
    }

    #[test]
    fn missing_stays_missing() {
        let h = age_hierarchy();
        assert_eq!(h.generalize(&Value::Missing, 2), Value::Missing);
    }

    #[test]
    #[should_panic(expected = "same ancestor depth")]
    fn ragged_tree_panics() {
        let _ = TreeHierarchy::new(&[("a", &["x", "y"]), ("b", &["x"])]);
    }
}
