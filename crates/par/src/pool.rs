//! The persistent worker pool behind the `par_*` entry points.
//!
//! Workers are plain `std::thread`s spawned lazily on first use and kept
//! alive for the process lifetime; each owns an mpsc receiver on which it
//! accepts *jobs*. A job is a borrowed `&dyn Fn() + Sync` whose lifetime
//! is erased: safety comes from the dispatch protocol in [`run`], which
//! never returns (not even by unwinding) until every worker it enlisted
//! has finished executing the borrow. This is the same latch argument
//! `std::thread::scope` makes, without paying a thread spawn per call —
//! the hot kernels issue thousands of sub-millisecond parallel regions
//! per run, so spawn cost would swamp the speedup.
//!
//! Workers spin briefly before blocking so that back-to-back regions (the
//! MDAV scan loop) hand off in nanoseconds, and yield inside the spin so
//! a single-core host is never starved.
//!
//! **Fault tolerance.** A worker can die — today only via the injected
//! `par.worker_panic` fault, but the recovery path assumes nothing about
//! the cause. Three mechanisms keep the pool usable:
//!
//! 1. every [`Job`] owns a [`Completion`] drop-guard, so the region latch
//!    is settled (and flagged as panicked) even when the job is dropped
//!    unexecuted — a dead worker's queued jobs, or a panic that unwinds
//!    past the job body;
//! 2. [`run`] treats a failed send as "that worker is dead", respawns a
//!    replacement into the same slot and re-sends the returned job;
//! 3. the pool mutex is taken with poison recovery — the worker list is
//!    valid after any panic because slots are replaced atomically.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex, OnceLock};

thread_local! {
    static IN_POOL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    static WORKER_ID: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

/// True on pool worker threads. Parallel entry points consult this to run
/// nested regions serially: a worker that re-dispatched to the pool could
/// wait on a job queued behind the very job it is executing.
pub(crate) fn in_pool() -> bool {
    IN_POOL.with(std::cell::Cell::get)
}

/// Stable observability label for the executing thread: `w00`, `w01`, …
/// on pool workers, `caller` on every other thread. Worker ids are slot
/// positions, which are deterministic (respawns reuse the dead worker's
/// slot, so ids never grow past the pool size).
pub(crate) fn thread_label() -> String {
    match WORKER_ID.with(std::cell::Cell::get) {
        usize::MAX => "caller".to_owned(),
        id => format!("w{id:02}"),
    }
}

/// How a parallel region failed. `run` reports this instead of panicking
/// so the `try_par_*` entry points can surface a typed error while the
/// plain entry points re-raise.
pub(crate) enum RegionError {
    /// The caller-thread invocation of the body panicked; the payload is
    /// preserved so plain entry points can resume the original unwind.
    Caller(Box<dyn std::any::Any + Send + 'static>),
    /// A pooled worker's invocation panicked (or its job was dropped by a
    /// dying worker). Worker payloads are consumed on the worker thread.
    Worker,
}

/// Completion latch plus a panic flag shared by one parallel region.
struct Latch {
    remaining: AtomicUsize,
    panicked: AtomicBool,
}

/// Drop-guard that settles a region's latch exactly once per job. Unless
/// the job body ran to completion (`finished` set), dropping the guard
/// marks the region panicked — this is what makes a worker dying *between*
/// receiving a job and finishing it (or a queued job dropped with a dead
/// worker's channel) unblock the caller instead of deadlocking it.
struct Completion {
    latch: Arc<Latch>,
    finished: bool,
}

impl Completion {
    fn new(latch: Arc<Latch>) -> Self {
        Completion {
            latch,
            finished: false,
        }
    }
}

impl Drop for Completion {
    fn drop(&mut self) {
        if !self.finished {
            self.latch.panicked.store(true, Ordering::Release);
        }
        self.latch.remaining.fetch_sub(1, Ordering::Release);
    }
}

/// One unit of dispatched work: the region body, lifetime-erased.
struct Job {
    /// SAFETY: points at a `&'a (dyn Fn() + Sync)` that [`run`] keeps
    /// alive until `latch.remaining` reaches zero.
    body: &'static (dyn Fn() + Sync),
    completion: Completion,
}

static POOL: OnceLock<Mutex<Vec<Sender<Job>>>> = OnceLock::new();

fn spawn_worker(id: usize) -> Sender<Job> {
    let (tx, rx) = channel::<Job>();
    std::thread::Builder::new()
        .name(format!("tdf-par-{id}"))
        .spawn(move || {
            IN_POOL.with(|f| f.set(true));
            WORKER_ID.with(|w| w.set(id));
            worker_loop(&rx);
        })
        .expect("spawn tdf-par worker");
    tx
}

fn worker_loop(rx: &Receiver<Job>) {
    loop {
        let Some(job) = next_job(rx) else { return };
        let Job {
            body,
            mut completion,
        } = job;
        // Injected fault: the worker dies after accepting a job. The
        // unwind drops `completion` un-finished, which settles the latch
        // and flags the region; the next dispatch that finds this
        // worker's channel closed respawns it.
        if faultkit::fire("par.worker_panic") {
            panic!("tdf-faultkit: injected pool-worker death (par.worker_panic)");
        }
        completion.finished = catch_unwind(AssertUnwindSafe(body)).is_ok();
        drop(completion);
    }
}

/// Spin-then-block receive: keeps hand-off latency in the nanosecond
/// range when parallel regions arrive back to back, parks otherwise.
fn next_job(rx: &Receiver<Job>) -> Option<Job> {
    for spin in 0u32..2048 {
        match rx.try_recv() {
            Ok(job) => return Some(job),
            Err(TryRecvError::Disconnected) => return None,
            Err(TryRecvError::Empty) => {
                if spin % 64 == 63 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }
    rx.recv().ok()
}

/// Executes `body` once on the calling thread and once on each of
/// `helpers` pooled workers, returning only after every invocation has
/// finished — on success *and* on failure, so the borrow never escapes.
/// Dead workers (closed channels) are respawned into their slot before
/// the job is re-sent.
pub(crate) fn run(helpers: usize, body: &(dyn Fn() + Sync)) -> Result<(), RegionError> {
    let latch = Arc::new(Latch {
        remaining: AtomicUsize::new(helpers),
        panicked: AtomicBool::new(false),
    });
    // SAFETY: the latch-wait below outlives every dispatched use of this
    // borrow, on success *and* on unwind: every Job's Completion guard
    // decrements the latch even when the job is dropped unexecuted.
    let body_static: &'static (dyn Fn() + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(body) };
    {
        // Poison recovery: the only writes under this lock are slot
        // replacements and appends of fully-constructed senders, so the
        // list is structurally valid even if a previous holder panicked.
        let mut workers = POOL
            .get_or_init(|| Mutex::new(Vec::new()))
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while workers.len() < helpers {
            let id = workers.len();
            workers.push(spawn_worker(id));
        }
        for slot in 0..helpers {
            let job = Job {
                body: body_static,
                completion: Completion::new(Arc::clone(&latch)),
            };
            if let Err(std::sync::mpsc::SendError(job)) = workers[slot].send(job) {
                // The worker died (its receiver is gone). Replace it and
                // hand the same job to the replacement.
                obs::count("par.pool.respawned_workers", 1);
                workers[slot] = spawn_worker(slot);
                workers[slot]
                    .send(job)
                    .expect("freshly spawned tdf-par worker accepts jobs");
            }
        }
    }
    let caller = catch_unwind(AssertUnwindSafe(body));
    let mut spin = 0u32;
    while latch.remaining.load(Ordering::Acquire) != 0 {
        spin = spin.wrapping_add(1);
        if spin % 64 == 63 {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
    match caller {
        Err(payload) => Err(RegionError::Caller(payload)),
        Ok(()) => {
            if latch.panicked.load(Ordering::Acquire) {
                Err(RegionError::Worker)
            } else {
                Ok(())
            }
        }
    }
}
