//! The persistent worker pool behind the `par_*` entry points.
//!
//! Workers are plain `std::thread`s spawned lazily on first use and kept
//! alive for the process lifetime; each owns an mpsc receiver on which it
//! accepts *jobs*. A job is a borrowed `&dyn Fn() + Sync` whose lifetime
//! is erased: safety comes from the dispatch protocol in [`run`], which
//! never returns (not even by unwinding) until every worker it enlisted
//! has finished executing the borrow. This is the same latch argument
//! `std::thread::scope` makes, without paying a thread spawn per call —
//! the hot kernels issue thousands of sub-millisecond parallel regions
//! per run, so spawn cost would swamp the speedup.
//!
//! Workers spin briefly before blocking so that back-to-back regions (the
//! MDAV scan loop) hand off in nanoseconds, and yield inside the spin so
//! a single-core host is never starved.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex, OnceLock};

thread_local! {
    static IN_POOL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    static WORKER_ID: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

/// True on pool worker threads. Parallel entry points consult this to run
/// nested regions serially: a worker that re-dispatched to the pool could
/// wait on a job queued behind the very job it is executing.
pub(crate) fn in_pool() -> bool {
    IN_POOL.with(std::cell::Cell::get)
}

/// Stable observability label for the executing thread: `w00`, `w01`, …
/// on pool workers, `caller` on every other thread. Worker ids are spawn
/// order, which is deterministic (workers are only ever appended).
pub(crate) fn thread_label() -> String {
    match WORKER_ID.with(std::cell::Cell::get) {
        usize::MAX => "caller".to_owned(),
        id => format!("w{id:02}"),
    }
}

/// Completion latch plus a panic flag shared by one parallel region.
struct Latch {
    remaining: AtomicUsize,
    panicked: AtomicBool,
}

/// One unit of dispatched work: the region body, lifetime-erased.
struct Job {
    /// SAFETY: points at a `&'a (dyn Fn() + Sync)` that [`run`] keeps
    /// alive until `latch.remaining` reaches zero.
    body: &'static (dyn Fn() + Sync),
    latch: Arc<Latch>,
}

static POOL: OnceLock<Mutex<Vec<Sender<Job>>>> = OnceLock::new();

fn spawn_worker(id: usize) -> Sender<Job> {
    let (tx, rx) = channel::<Job>();
    std::thread::Builder::new()
        .name(format!("tdf-par-{id}"))
        .spawn(move || {
            IN_POOL.with(|f| f.set(true));
            WORKER_ID.with(|w| w.set(id));
            worker_loop(&rx);
        })
        .expect("spawn tdf-par worker");
    tx
}

fn worker_loop(rx: &Receiver<Job>) {
    loop {
        let Some(job) = next_job(rx) else { return };
        if catch_unwind(AssertUnwindSafe(|| (job.body)())).is_err() {
            job.latch.panicked.store(true, Ordering::Release);
        }
        job.latch.remaining.fetch_sub(1, Ordering::Release);
    }
}

/// Spin-then-block receive: keeps hand-off latency in the nanosecond
/// range when parallel regions arrive back to back, parks otherwise.
fn next_job(rx: &Receiver<Job>) -> Option<Job> {
    for spin in 0u32..2048 {
        match rx.try_recv() {
            Ok(job) => return Some(job),
            Err(TryRecvError::Disconnected) => return None,
            Err(TryRecvError::Empty) => {
                if spin % 64 == 63 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }
    rx.recv().ok()
}

/// Executes `body` once on the calling thread and once on each of
/// `helpers` pooled workers, returning only after every invocation has
/// finished. Panics (from any thread) propagate to the caller — but never
/// before all workers are done with the borrow.
pub(crate) fn run(helpers: usize, body: &(dyn Fn() + Sync)) {
    let latch = Arc::new(Latch {
        remaining: AtomicUsize::new(helpers),
        panicked: AtomicBool::new(false),
    });
    // SAFETY: the latch-wait below outlives every dispatched use of this
    // borrow, on success *and* on unwind.
    let body_static: &'static (dyn Fn() + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(body) };
    {
        let mut workers = POOL
            .get_or_init(|| Mutex::new(Vec::new()))
            .lock()
            .expect("pool lock");
        while workers.len() < helpers {
            let id = workers.len();
            workers.push(spawn_worker(id));
        }
        for tx in workers.iter().take(helpers) {
            tx.send(Job {
                body: body_static,
                latch: Arc::clone(&latch),
            })
            .expect("pool worker alive");
        }
    }
    let caller = catch_unwind(AssertUnwindSafe(body));
    let mut spin = 0u32;
    while latch.remaining.load(Ordering::Acquire) != 0 {
        spin = spin.wrapping_add(1);
        if spin % 64 == 63 {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
    match caller {
        Err(payload) => resume_unwind(payload),
        Ok(()) => {
            if latch.panicked.load(Ordering::Acquire) {
                panic!("tdf-par: a pooled worker panicked while executing a parallel region");
            }
        }
    }
}
