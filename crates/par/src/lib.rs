//! In-tree deterministic fork/join (the workspace's `rayon` slice).
//!
//! The workspace is hermetic — no registry dependencies — so data
//! parallelism for the hot kernels (MDAV distance scans, Mondrian split
//! evaluation, record-linkage scans, multi-server PIR answers) is built
//! here on `std::thread`, with one contract the external crates do not
//! offer out of the box:
//!
//! > **Results are bit-identical regardless of thread count.**
//!
//! Three rules enforce it:
//!
//! 1. **Fixed chunk boundaries.** Work is split into chunks whose
//!    boundaries depend only on the input length (or an explicit `chunk`
//!    argument) — never on how many threads happen to run, and never on
//!    which thread grabs which chunk.
//! 2. **Order-preserving merge.** Chunk results are combined on the
//!    calling thread in chunk order (a left fold), so floating-point
//!    reductions associate identically every run.
//! 3. **Serial path = chunked path.** With one thread the same chunks are
//!    produced and folded in the same order, so `TDF_THREADS=1` is merely
//!    the no-pool execution of the identical computation.
//!
//! The *requested* thread count comes from, in priority order:
//! [`with_threads`] (a scoped, thread-local override used by benches and
//! tests), the `TDF_THREADS` environment variable, and
//! [`std::thread::available_parallelism`]. At dispatch time the request
//! is clamped by [`measured_cores`] (override: [`with_cores`] /
//! `TDF_CORES`): the persistent sharded executor never enlists more
//! runnable threads than the host has cores, so `TDF_THREADS=4` on a
//! single-core host runs sequentially instead of oversubscribing — with
//! bit-identical results, because chunking and merge order never depend
//! on the enlisted count. This extends PR 1's determinism contract
//! (`TDF_SEED`): `crates/bench/tests/determinism.rs` asserts that
//! reports regenerate bit-identically under `TDF_THREADS=1` and
//! `TDF_THREADS=4`.
//!
//! ```
//! let squares = par::par_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//!
//! let sum = par::par_index_reduce(1000, 0, |r| r.map(|i| i as f64).sum::<f64>(), |a, b| a + b);
//! let serial = par::with_threads(1, || {
//!     par::par_index_reduce(1000, 0, |r| r.map(|i| i as f64).sum::<f64>(), |a, b| a + b)
//! });
//! assert_eq!(sum, serial); // bit-identical, not just approximately equal
//! ```

mod executor;

use std::mem::{ManuallyDrop, MaybeUninit};
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Why a `try_par_*` region failed. Covers both the caller's own
/// invocation of the body and pooled workers (which may die entirely —
/// see `executor.rs`; the executor respawns them, and the region that
/// lost a worker reports `WorkerPanicked` instead of aborting the
/// process).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParError {
    /// The region body panicked on the calling thread. `message` is the
    /// panic payload when it was string-typed.
    RegionPanicked {
        /// The stringified panic payload.
        message: String,
    },
    /// A pooled worker panicked (or died) while executing the region.
    /// The payload is consumed on the worker thread, so no message.
    WorkerPanicked,
}

impl std::fmt::Display for ParError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParError::RegionPanicked { message } => {
                write!(f, "parallel region panicked: {message}")
            }
            ParError::WorkerPanicked => {
                write!(
                    f,
                    "a pooled worker panicked while executing a parallel region"
                )
            }
        }
    }
}

impl std::error::Error for ParError {}

impl ParError {
    fn from_payload(payload: &(dyn std::any::Any + Send)) -> Self {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_owned());
        ParError::RegionPanicked { message }
    }

    fn from_region(e: executor::RegionError) -> Self {
        match e {
            executor::RegionError::Caller(payload) => Self::from_payload(payload.as_ref()),
            executor::RegionError::Worker => ParError::WorkerPanicked,
        }
    }
}

/// The plain (panicking) entry points' view of a region result: re-raise
/// the caller's own panic with its original payload, turn a worker loss
/// into the historical pool panic message.
fn complete_or_propagate(result: Result<(), executor::RegionError>) {
    match result {
        Ok(()) => {}
        Err(executor::RegionError::Caller(payload)) => std::panic::resume_unwind(payload),
        Err(executor::RegionError::Worker) => {
            panic!("tdf-par: a pooled worker panicked while executing a parallel region")
        }
    }
}

/// Hard ceiling on the usable thread count (a safety valve for absurd
/// `TDF_THREADS` values, not a tuning knob).
pub const MAX_THREADS: usize = 64;

/// Inputs shorter than this run inline on the calling thread even when a
/// pool is available: dispatching a handful of elements costs more than
/// scanning them (the Mondrian small-region regression in EXPERIMENTS.md
/// §P1 — deep recursion levels scan regions of a few dozen records each).
/// Because chunk boundaries and fold order are unchanged, the inline path
/// produces bit-identical results; only the scheduling differs.
/// Overridable via `TDF_PAR_THRESHOLD` (`0` disables the fallback).
pub const SEQUENTIAL_THRESHOLD: usize = 1024;

fn sequential_threshold() -> usize {
    static PARSED: OnceLock<usize> = OnceLock::new();
    *PARSED.get_or_init(|| {
        std::env::var("TDF_PAR_THRESHOLD")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(SEQUENTIAL_THRESHOLD)
    })
}

thread_local! {
    static OVERRIDE: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
    static CORES_OVERRIDE: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

fn env_threads() -> Option<usize> {
    static PARSED: OnceLock<Option<usize>> = OnceLock::new();
    *PARSED.get_or_init(|| {
        std::env::var("TDF_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
    })
}

/// The effective thread count for parallel regions started by this
/// thread: the [`with_threads`] override if one is active, else
/// `TDF_THREADS`, else the machine's available parallelism. Always ≥ 1;
/// `1` means the serial fast path. Inside a pool worker this is `1`
/// (nested regions run serially — see `executor.rs` for why).
pub fn threads() -> usize {
    if executor::in_pool() {
        return 1;
    }
    let o = OVERRIDE.with(std::cell::Cell::get);
    if o != 0 {
        return o;
    }
    env_threads()
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, std::num::NonZero::get))
        .min(MAX_THREADS)
}

/// The measured core count the executor sizes itself by: the
/// [`with_cores`] override if one is active, else `TDF_CORES`, else
/// [`std::thread::available_parallelism`]. A `TDF_THREADS` (or
/// [`with_threads`]) request above this is clamped at dispatch time —
/// enlisting more runnable threads than the host has cores is precisely
/// the oversubscription that made the original fork/join pool scale
/// *negatively* (EXPERIMENTS.md §P1/§P5). Chunk boundaries and merge
/// order do not depend on this value, so clamping never changes results.
pub fn measured_cores() -> usize {
    let o = CORES_OVERRIDE.with(std::cell::Cell::get);
    if o != 0 {
        return o;
    }
    static PARSED: OnceLock<Option<usize>> = OnceLock::new();
    PARSED
        .get_or_init(|| {
            std::env::var("TDF_CORES")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n >= 1)
        })
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, std::num::NonZero::get))
        .min(MAX_THREADS)
}

/// Runs `f` with the measured core count pinned to `n` (clamped to
/// `1..=`[`MAX_THREADS`]) for the current thread, restoring the previous
/// value afterwards — including on panic. Tests and deterministic
/// snapshot tools use this to exercise the pooled path on single-core
/// hosts (or to force the sequential path on large ones) without
/// touching the process environment.
pub fn with_cores<T>(n: usize, f: impl FnOnce() -> T) -> T {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            CORES_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = CORES_OVERRIDE.with(|c| c.replace(n.clamp(1, MAX_THREADS)));
    let _restore = Restore(prev);
    f()
}

/// Threads the executor will actually enlist for a region started by this
/// thread: the requested count clamped by the measured core count.
/// Kernels that pick between serial-shaped and parallel-shaped code
/// (bit-identical by contract) should branch on this, not on
/// [`threads`] — the request says what was asked for, this says what
/// the hardware will actually run.
pub fn effective_threads() -> usize {
    threads().min(measured_cores())
}

/// Runs `f` with the effective thread count pinned to `n` (clamped to
/// `1..=`[`MAX_THREADS`]) for the current thread, restoring the previous
/// value afterwards — including on panic. This is how benches sweep
/// 1/2/4 threads inside one process and how property tests compare
/// thread counts without touching the process environment.
pub fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = OVERRIDE.with(|c| c.replace(n.clamp(1, MAX_THREADS)));
    let _restore = Restore(prev);
    f()
}

/// Chunk size for an input of `len` items: an explicit request wins,
/// otherwise at most 64 chunks. A pure function of `(len, chunk)` — this
/// is what makes reductions thread-count-invariant.
fn chunk_size(len: usize, chunk: usize) -> usize {
    if chunk > 0 {
        chunk
    } else {
        len.div_ceil(64).max(1)
    }
}

/// Runs `process(chunk_id, index_range)` for every chunk of `0..n`,
/// serially in chunk order or sharded across the executor — the set of
/// `(chunk_id, range)` pairs is identical either way, and chunk results
/// are merged in chunk order by the callers, so which participant
/// executes a chunk never affects the result.
fn run_chunked(
    n: usize,
    chunk: usize,
    process: &(dyn Fn(usize, Range<usize>) + Sync),
) -> Result<(), executor::RegionError> {
    if n == 0 {
        return Ok(());
    }
    let size = chunk_size(n, chunk);
    let num_chunks = n.div_ceil(size);
    let range_of = |c: usize| c * size..((c + 1) * size).min(n);
    let threads = if n < sequential_threshold() {
        1
    } else {
        effective_threads().min(num_chunks)
    };
    // The packed chunk deques index chunks as u32; a region that large
    // (> 4 billion chunks) is degenerate anyway — run it serially.
    if threads <= 1 || num_chunks > u32::MAX as usize {
        for c in 0..num_chunks {
            process(c, range_of(c));
        }
        return Ok(());
    }
    obs::count("par.tasks_dispatched", num_chunks as u64);
    executor::run_region(num_chunks, threads - 1, &|c| process(c, range_of(c)))
}

/// Pointer wrapper so disjoint chunk writes can target one output buffer
/// from several threads. Soundness: each chunk writes only its own index
/// range, and `run_chunked` completes every chunk before returning.
struct SendPtr<T>(*mut T);
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Takes `self` by value so closures capture the whole (Sync) wrapper
    /// instead of disjoint-capturing the bare raw-pointer field.
    fn get(self) -> *mut T {
        self.0
    }
}

/// Parallel `(0..n).map(f).collect()`, order-preserving: slot `i` of the
/// result is `f(i)`. Deterministic for any thread count by construction
/// (each slot is written exactly once, independently).
pub fn par_map_range<U: Send>(n: usize, f: impl Fn(usize) -> U + Sync) -> Vec<U> {
    // Slot `i` is `f(i)` whichever path runs, so the plain collect is the
    // same value — without the chunk dispatch or the uninit buffer.
    if n < sequential_threshold() || effective_threads() <= 1 {
        if n > 0 && n < sequential_threshold() {
            obs::count("par.sequential_fallback", 1);
        }
        return (0..n).map(f).collect();
    }
    let mut out: Vec<MaybeUninit<U>> = Vec::with_capacity(n);
    // SAFETY: MaybeUninit contents need no initialization.
    unsafe { out.set_len(n) };
    let base = SendPtr(out.as_mut_ptr());
    let region = run_chunked(n, 0, &|_, range| {
        let ptr = base.get();
        for i in range {
            // SAFETY: `i` is in this chunk's disjoint range, in-bounds.
            unsafe { ptr.add(i).write(MaybeUninit::new(f(i))) };
        }
    });
    // On failure the set of initialized slots is unknowable; re-raising
    // here drops the buffer element-drop-free, leaking at worst.
    complete_or_propagate(region);
    // SAFETY: run_chunked returned Ok, so every chunk ran: every slot of
    // 0..n is initialized.
    let mut out = ManuallyDrop::new(out);
    unsafe { Vec::from_raw_parts(out.as_mut_ptr().cast::<U>(), n, out.capacity()) }
}

/// [`par_map_range`] with region panics converted into a typed
/// [`ParError`] at this boundary instead of unwinding: the caller's own
/// panic payload is stringified, a lost pool worker (e.g. the injected
/// `par.worker_panic` fault) becomes [`ParError::WorkerPanicked`], and
/// the pool stays usable for subsequent regions either way. The `Ok`
/// value is bit-identical to [`par_map_range`] when nothing fails.
pub fn try_par_map_range<U: Send>(
    n: usize,
    f: impl Fn(usize) -> U + Sync,
) -> Result<Vec<U>, ParError> {
    if n < sequential_threshold() || effective_threads() <= 1 {
        if n > 0 && n < sequential_threshold() {
            obs::count("par.sequential_fallback", 1);
        }
        return catch_unwind(AssertUnwindSafe(|| (0..n).map(&f).collect()))
            .map_err(|p| ParError::from_payload(p.as_ref()));
    }
    let mut out: Vec<MaybeUninit<U>> = Vec::with_capacity(n);
    // SAFETY: MaybeUninit contents need no initialization.
    unsafe { out.set_len(n) };
    let base = SendPtr(out.as_mut_ptr());
    let region = run_chunked(n, 0, &|_, range| {
        let ptr = base.get();
        for i in range {
            // SAFETY: `i` is in this chunk's disjoint range, in-bounds.
            unsafe { ptr.add(i).write(MaybeUninit::new(f(i))) };
        }
    });
    // Which slots are initialized after a fault is unknowable, so the
    // buffer is dropped element-drop-free — leaking the initialized
    // elements' owned allocations at worst, like the panic path above.
    region.map_err(ParError::from_region)?;
    // SAFETY: run_chunked returned Ok, so every slot is initialized.
    let mut out = ManuallyDrop::new(out);
    Ok(unsafe { Vec::from_raw_parts(out.as_mut_ptr().cast::<U>(), n, out.capacity()) })
}

/// Parallel `items.iter().map(f).collect()`, order-preserving.
///
/// ```
/// let doubled = par::par_map(&[1, 2, 3], |&x| x * 2);
/// assert_eq!(doubled, vec![2, 4, 6]);
/// ```
pub fn par_map<T: Sync, U: Send>(items: &[T], f: impl Fn(&T) -> U + Sync) -> Vec<U> {
    par_map_range(items.len(), |i| f(&items[i]))
}

/// [`par_map`] with region panics converted into a typed [`ParError`] —
/// see [`try_par_map_range`].
pub fn try_par_map<T: Sync, U: Send>(
    items: &[T],
    f: impl Fn(&T) -> U + Sync,
) -> Result<Vec<U>, ParError> {
    try_par_map_range(items.len(), |i| f(&items[i]))
}

/// Parallel map for a *short list of heavy tasks*: one executor chunk per
/// item, no sequential-threshold fallback. [`par_map`] is sized for long
/// element scans — inputs under [`SEQUENTIAL_THRESHOLD`] run inline
/// because dispatch costs more than the scan. That policy is exactly
/// wrong when each item is itself an expensive kernel invocation (masking
/// one sealed segment, answering one PIR batch): a dirty-segment list of
/// a dozen entries would never reach the pool. Here every item is its own
/// chunk, so `n` heavy tasks fan out across `min(n, effective_threads())`
/// participants.
///
/// Order-preserving and bit-identical at any thread count by
/// construction: slot `i` of the result is `f(&items[i])`, written
/// exactly once, and which participant computes it never affects the
/// value. Runs inline when the list has one item, the host has one
/// usable core, or the caller is itself a pool worker (nested regions
/// are serial — see `executor.rs`).
pub fn par_map_heavy<T: Sync, U: Send>(items: &[T], f: impl Fn(&T) -> U + Sync) -> Vec<U> {
    let n = items.len();
    let threads = effective_threads().min(n);
    if n <= 1 || threads <= 1 {
        return items.iter().map(f).collect();
    }
    obs::count("par.tasks_dispatched", n as u64);
    let mut out: Vec<MaybeUninit<U>> = Vec::with_capacity(n);
    // SAFETY: MaybeUninit contents need no initialization.
    unsafe { out.set_len(n) };
    let base = SendPtr(out.as_mut_ptr());
    let region = executor::run_region(n, threads - 1, &|i| {
        let ptr = base.get();
        // SAFETY: chunk `i` owns slot `i` exclusively, in-bounds.
        unsafe { ptr.add(i).write(MaybeUninit::new(f(&items[i]))) };
    });
    // On failure the set of initialized slots is unknowable; re-raising
    // here drops the buffer element-drop-free, leaking at worst.
    complete_or_propagate(region);
    // SAFETY: run_region returned Ok, so every slot is initialized.
    let mut out = ManuallyDrop::new(out);
    unsafe { Vec::from_raw_parts(out.as_mut_ptr().cast::<U>(), n, out.capacity()) }
}

/// Order-preserving indexed reduce: maps fixed chunks of `0..n` (chunk
/// size `chunk`, or an automatic length-only policy when `0`) and folds
/// the chunk results **in chunk order** on the calling thread. `None`
/// iff `n == 0`.
///
/// Because the chunk boundaries are a pure function of `(n, chunk)` and
/// the fold order is fixed, the result is bit-identical for every thread
/// count — even for non-associative merges such as floating-point `+`.
pub fn par_index_reduce<A: Send>(
    n: usize,
    chunk: usize,
    map: impl Fn(Range<usize>) -> A + Sync,
    mut merge: impl FnMut(A, A) -> A,
) -> Option<A> {
    if n == 0 {
        return None;
    }
    let num_chunks = n.div_ceil(chunk_size(n, chunk));
    // Same chunk boundaries, same left fold — just mapped and merged in
    // one pass on the calling thread, skipping the slot vector.
    if n < sequential_threshold() || effective_threads() <= 1 {
        if n < sequential_threshold() {
            obs::count("par.sequential_fallback", 1);
        }
        let size = chunk_size(n, chunk);
        let mut acc: Option<A> = None;
        for c in 0..num_chunks {
            let a = map(c * size..((c + 1) * size).min(n));
            acc = Some(match acc {
                None => a,
                Some(prev) => merge(prev, a),
            });
        }
        return acc;
    }
    let slots: Vec<Mutex<Option<A>>> = (0..num_chunks).map(|_| Mutex::new(None)).collect();
    let region = run_chunked(n, chunk, &|c, range| {
        *slots[c].lock().unwrap_or_else(PoisonError::into_inner) = Some(map(range));
    });
    complete_or_propagate(region);
    let mut acc: Option<A> = None;
    for slot in slots {
        let a = slot
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .expect("all chunks completed");
        acc = Some(match acc {
            None => a,
            Some(prev) => merge(prev, a),
        });
    }
    acc
}

/// [`par_index_reduce`] with region panics converted into a typed
/// [`ParError`] — see [`try_par_map_range`]. `Ok(None)` iff `n == 0`.
pub fn try_par_index_reduce<A: Send>(
    n: usize,
    chunk: usize,
    map: impl Fn(Range<usize>) -> A + Sync,
    mut merge: impl FnMut(A, A) -> A,
) -> Result<Option<A>, ParError> {
    if n == 0 {
        return Ok(None);
    }
    let num_chunks = n.div_ceil(chunk_size(n, chunk));
    if n < sequential_threshold() || effective_threads() <= 1 {
        if n < sequential_threshold() {
            obs::count("par.sequential_fallback", 1);
        }
        let size = chunk_size(n, chunk);
        return catch_unwind(AssertUnwindSafe(|| {
            let mut acc: Option<A> = None;
            for c in 0..num_chunks {
                let a = map(c * size..((c + 1) * size).min(n));
                acc = Some(match acc {
                    None => a,
                    Some(prev) => merge(prev, a),
                });
            }
            acc
        }))
        .map_err(|p| ParError::from_payload(p.as_ref()));
    }
    let slots: Vec<Mutex<Option<A>>> = (0..num_chunks).map(|_| Mutex::new(None)).collect();
    run_chunked(n, chunk, &|c, range| {
        *slots[c].lock().unwrap_or_else(PoisonError::into_inner) = Some(map(range));
    })
    .map_err(ParError::from_region)?;
    let mut acc: Option<A> = None;
    for slot in slots {
        let a = slot
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .expect("all chunks completed");
        acc = Some(match acc {
            None => a,
            Some(prev) => merge(prev, a),
        });
    }
    Ok(acc)
}

/// Chunked slice reduce: `map` sees `&items[chunk_range]`, results fold
/// in chunk order. `chunk = 0` picks the automatic length-only policy.
/// `None` iff `items` is empty.
///
/// ```
/// let total =
///     par::par_chunks_reduce(&[1.5f64, 2.5, 3.0], 0, |c| c.iter().sum::<f64>(), |a, b| a + b);
/// assert_eq!(total, Some(7.0));
/// ```
pub fn par_chunks_reduce<T: Sync, A: Send>(
    items: &[T],
    chunk: usize,
    map: impl Fn(&[T]) -> A + Sync,
    merge: impl FnMut(A, A) -> A,
) -> Option<A> {
    par_index_reduce(items.len(), chunk, |r| map(&items[r]), merge)
}

/// [`par_chunks_reduce`] with region panics converted into a typed
/// [`ParError`] — see [`try_par_map_range`]. `Ok(None)` iff empty.
pub fn try_par_chunks_reduce<T: Sync, A: Send>(
    items: &[T],
    chunk: usize,
    map: impl Fn(&[T]) -> A + Sync,
    merge: impl FnMut(A, A) -> A,
) -> Result<Option<A>, ParError> {
    try_par_index_reduce(items.len(), chunk, |r| map(&items[r]), merge)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..10_000).collect();
        for t in [1usize, 2, 4, 7] {
            // Pin the measured core count so the pool engages even on a
            // single-core CI host — the clamp is under test elsewhere.
            let out = with_cores(8, || with_threads(t, || par_map(&items, |&x| x * 3 + 1)));
            assert_eq!(out.len(), items.len());
            assert!(
                out.iter().enumerate().all(|(i, &v)| v == i as u64 * 3 + 1),
                "t = {t}"
            );
        }
    }

    #[test]
    fn par_map_handles_empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[9u32], |&x| x + 1), vec![10]);
    }

    #[test]
    fn float_reduce_is_bit_identical_across_thread_counts() {
        // A sum designed to be associativity-sensitive: wildly mixed
        // magnitudes, so any re-association changes low-order bits.
        let xs: Vec<f64> = (0..5000)
            .map(|i| ((i * 2654435761u64 % 1000) as f64).powf(3.1) / ((i + 1) as f64))
            .collect();
        let reduce = || par_chunks_reduce(&xs, 0, |c| c.iter().sum::<f64>(), |a, b| a + b).unwrap();
        let reference = with_threads(1, reduce);
        for t in [2usize, 3, 4, 7] {
            let got = with_cores(8, || with_threads(t, reduce));
            assert_eq!(got.to_bits(), reference.to_bits(), "t = {t}");
        }
    }

    #[test]
    fn explicit_chunk_size_controls_boundaries() {
        // chunk = 10 over 0..100 → exactly ten chunks, folded in order.
        let chunks = par_index_reduce(
            100,
            10,
            |r| vec![(r.start, r.end)],
            |mut a, b| {
                a.extend(b);
                a
            },
        )
        .unwrap();
        assert_eq!(chunks.len(), 10);
        assert_eq!(chunks[0], (0, 10));
        assert_eq!(chunks[9], (90, 100));
        assert!(chunks.windows(2).all(|w| w[0].1 == w[1].0));
    }

    #[test]
    fn index_reduce_empty_is_none() {
        assert_eq!(par_index_reduce(0, 0, |_| 1u32, |a, b| a + b), None);
        let empty: Vec<u8> = Vec::new();
        assert_eq!(par_chunks_reduce(&empty, 0, |_| 1u32, |a, b| a + b), None);
    }

    #[test]
    fn small_inputs_run_inline_on_the_calling_thread() {
        let caller = std::thread::current().id();
        // 100 < SEQUENTIAL_THRESHOLD: no pool dispatch even at t = 4
        // with cores available.
        let ids = with_cores(4, || {
            with_threads(4, || par_map_range(100, |_| std::thread::current().id()))
        });
        assert!(ids.iter().all(|&id| id == caller));
        // Same computation above and below the threshold.
        let big: Vec<u64> = (0..2 * SEQUENTIAL_THRESHOLD as u64).collect();
        let small_sum: u64 = big[..100].iter().sum();
        assert_eq!(
            with_threads(4, || par_chunks_reduce(
                &big[..100],
                0,
                |c| c.iter().sum::<u64>(),
                |a, b| a + b
            )),
            Some(small_sum)
        );
    }

    #[test]
    fn measured_cores_clamp_keeps_oversubscribed_requests_inline() {
        // On a "1-core host" (pinned via with_cores) a t=4 request must
        // not enlist pool workers: everything runs on the caller.
        let caller = std::thread::current().id();
        let ids = with_cores(1, || {
            with_threads(4, || par_map_range(10_000, |_| std::thread::current().id()))
        });
        assert!(ids.iter().all(|&id| id == caller));
        // And the clamped run is bit-identical to the pooled one.
        let xs: Vec<f64> = (0..5000).map(|i| (i as f64).sqrt() / 3.0).collect();
        let reduce = || par_chunks_reduce(&xs, 0, |c| c.iter().sum::<f64>(), |a, b| a + b).unwrap();
        let clamped = with_cores(1, || with_threads(4, reduce));
        let pooled = with_cores(4, || with_threads(4, reduce));
        assert_eq!(clamped.to_bits(), pooled.to_bits());
    }

    #[test]
    fn with_cores_restores_previous_value() {
        let ambient = measured_cores();
        let inner = with_cores(2, measured_cores);
        assert_eq!(inner, 2);
        assert_eq!(measured_cores(), ambient);
        // Clamped below and above.
        assert_eq!(with_cores(0, measured_cores), 1);
        assert_eq!(with_cores(10_000, measured_cores), MAX_THREADS);
    }

    #[test]
    fn with_threads_restores_previous_value() {
        let ambient = threads();
        let inner = with_threads(3, threads);
        assert_eq!(inner, 3);
        assert_eq!(threads(), ambient);
        // Clamped below and above.
        assert_eq!(with_threads(0, threads), 1);
        assert_eq!(with_threads(10_000, threads), MAX_THREADS);
    }

    #[test]
    fn nested_regions_run_serially_and_correctly() {
        let out = with_cores(4, || {
            with_threads(4, || {
                par_map_range(8, |i| {
                    // Nested call from (potentially) a pool worker: must not
                    // deadlock and must produce the same values.
                    par_index_reduce(
                        100,
                        0,
                        |r| r.map(|j| (i * j) as u64).sum::<u64>(),
                        |a, b| a + b,
                    )
                    .unwrap()
                })
            })
        });
        let expect: Vec<u64> = (0..8)
            .map(|i| (0..100).map(|j| (i * j) as u64).sum())
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let result = std::panic::catch_unwind(|| {
            with_cores(4, || {
                with_threads(4, || {
                    par_map_range(1000, |i| {
                        assert!(i != 777, "boom at {i}");
                        i
                    })
                })
            })
        });
        assert!(result.is_err());
        // The pool must stay usable afterwards.
        let ok = with_cores(4, || with_threads(4, || par_map_range(1000, |i| i * 2)));
        assert_eq!(ok[50], 100);
    }

    #[test]
    fn try_variants_match_plain_variants_when_nothing_fails() {
        let items: Vec<u64> = (0..5000).collect();
        for t in [1usize, 4] {
            with_cores(4, || {
                with_threads(t, || {
                    assert_eq!(
                        try_par_map(&items, |&x| x * 7).unwrap(),
                        par_map(&items, |&x| x * 7),
                        "t = {t}"
                    );
                    let sum = |c: &[u64]| c.iter().map(|&x| x as f64).sum::<f64>();
                    assert_eq!(
                        try_par_chunks_reduce(&items, 0, sum, |a, b| a + b).unwrap(),
                        par_chunks_reduce(&items, 0, sum, |a, b| a + b),
                        "t = {t}"
                    );
                })
            });
        }
        assert_eq!(try_par_map_range(0, |i| i).unwrap(), Vec::<usize>::new());
        assert_eq!(try_par_index_reduce(0, 0, |_| 1u32, |a, b| a + b), Ok(None));
    }

    #[test]
    fn try_par_map_converts_panics_into_typed_errors() {
        // Sequential path: the payload string is preserved.
        let err = try_par_map_range(100, |i| {
            assert!(i != 7, "boom at {i}");
            i
        })
        .unwrap_err();
        assert!(
            matches!(&err, ParError::RegionPanicked { message } if message.contains("boom at 7")),
            "got {err:?}"
        );
        // Pooled path: the panic lands on whichever thread stole the
        // chunk, so either variant is acceptable — but it must be an
        // error, not an abort, and the pool must keep working.
        let err = with_cores(4, || {
            with_threads(4, || {
                try_par_map_range(5000, |i| {
                    assert!(i != 777, "boom at {i}");
                    i
                })
            })
        })
        .unwrap_err();
        assert!(!err.to_string().is_empty());
        let ok = with_cores(4, || with_threads(4, || par_map_range(5000, |i| i * 2)));
        assert_eq!(ok[100], 200);
        // Reduce flavours too.
        let err = try_par_index_reduce(
            100,
            0,
            |r| {
                assert!(!r.contains(&50), "reduce boom");
                r.len()
            },
            |a, b| a + b,
        )
        .unwrap_err();
        assert!(matches!(err, ParError::RegionPanicked { .. }));
    }

    #[test]
    fn par_map_heavy_dispatches_short_lists_and_preserves_order() {
        // 12 items is far below SEQUENTIAL_THRESHOLD — par_map would run
        // inline, but the heavy variant must still fan out. Correctness
        // and order are asserted at several thread counts; bit-identity
        // across counts follows from slot construction.
        let items: Vec<u64> = (0..12).collect();
        let reference: Vec<u64> = items.iter().map(|&x| x * x + 7).collect();
        for t in [1usize, 2, 4, 7] {
            let out = with_cores(8, || {
                with_threads(t, || par_map_heavy(&items, |&x| x * x + 7))
            });
            assert_eq!(out, reference, "t = {t}");
        }
        // Degenerate shapes.
        let empty: Vec<u64> = Vec::new();
        assert!(par_map_heavy(&empty, |&x| x).is_empty());
        assert_eq!(par_map_heavy(&[5u64], |&x| x + 1), vec![6]);
    }

    #[test]
    fn par_map_heavy_engages_pool_workers_below_the_threshold() {
        use std::sync::Barrier;
        // Two tasks rendezvous at a barrier: this can only complete when
        // at least two participants run concurrently, proving the list
        // was not serialized despite being far below the threshold.
        let barrier = Barrier::new(2);
        let out = with_cores(4, || {
            with_threads(4, || {
                par_map_heavy(&[0usize, 1, 2, 3, 4, 5, 6, 7], |&i| {
                    if i < 2 {
                        barrier.wait();
                    }
                    std::thread::current().id()
                })
            })
        });
        let first = out[0];
        assert!(
            out.iter().any(|&id| id != first),
            "expected at least two participants"
        );
    }

    #[test]
    fn par_map_heavy_panic_propagates_and_pool_survives() {
        let result = std::panic::catch_unwind(|| {
            with_cores(4, || {
                with_threads(4, || {
                    par_map_heavy(&[0usize, 1, 2, 3, 4, 5, 6, 7], |&i| {
                        assert!(i != 5, "heavy boom at {i}");
                        i
                    })
                })
            })
        });
        assert!(result.is_err());
        let ok = with_cores(4, || {
            with_threads(4, || par_map_heavy(&[1usize, 2, 3, 4], |&i| i * 2))
        });
        assert_eq!(ok, vec![2, 4, 6, 8]);
    }

    #[test]
    fn many_concurrent_regions_from_plain_threads() {
        // Several user threads dispatching to the shared pool at once.
        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    // with_cores is thread-local: pin it inside each
                    // spawned thread so every dispatcher hits the pool.
                    with_cores(4, || {
                        with_threads(3, || {
                            par_map_range(2000, move |i| (i as u64).wrapping_mul(t + 1))
                                .iter()
                                .sum::<u64>()
                        })
                    })
                })
            })
            .collect();
        for (t, h) in handles.into_iter().enumerate() {
            let got = h.join().expect("no panic");
            let want: u64 = (0..2000u64).map(|i| i.wrapping_mul(t as u64 + 1)).sum();
            assert_eq!(got, want);
        }
    }
}
