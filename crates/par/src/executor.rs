//! The persistent sharded executor behind the `par_*` entry points.
//!
//! This replaces the original fork/join-per-call pool, whose per-region
//! costs (an `Arc` latch allocation, one mpsc node per enlisted worker,
//! a single shared chunk cursor contended by every thread, and unbounded
//! caller spin-waiting) produced *negative* thread scaling on the hot
//! kernels — `BENCH_par.json` showed MDAV 21% and Mondrian 4.6× slower
//! at `TDF_THREADS=4` than at 1 on the measurement host. The executor
//! keeps the parts that were right (long-lived workers, spawn-free
//! dispatch, panic survival) and fixes the parts that were not:
//!
//! * **Per-participant chunk deques.** A region's chunks are partitioned
//!   into contiguous blocks, one per enlisted participant (the caller is
//!   participant 0), by a pure function of `(num_chunks, participants)`.
//!   Each participant pops its own block front-to-back; a participant
//!   whose block is drained steals from the *back* of the next
//!   participant's block. A deque is one packed `AtomicU64`
//!   (`next:u32 | end:u32`) updated by CAS, so pops and steals are
//!   lock-free and the common no-steal case never touches another
//!   participant's cache line. Which thread executes a chunk never
//!   affects results — chunk boundaries and merge order are fixed
//!   upstream in `run_chunked` — so stealing preserves bit-identity.
//! * **Stack-allocated region state.** The latch, the deques and the
//!   lifetime-erased body pointer live in a [`Region`] on the caller's
//!   stack; dispatch allocates nothing but the mpsc node per worker.
//! * **Blocking completion.** The caller spins only briefly, then parks
//!   on the region's condvar; every participant settles the latch under
//!   the region mutex, so a parked caller is woken exactly once and an
//!   oversubscribed host is never burned by spin loops.
//! * **Sized by measured core count.** `run_chunked` enlists at most
//!   [`crate::measured_cores`] participants regardless of `TDF_THREADS`,
//!   so requesting 4 threads on a 1-core host runs sequentially instead
//!   of scheduling three threads against one core — the structural fix
//!   for the negative-scaling bug class (see the `scaling_gate` CI bin).
//!
//! **Fault tolerance** is unchanged from the original pool: a worker can
//! die (today only via the injected `par.worker_panic` fault, one draw
//! per dispatched job, exactly as before). Every dispatched [`Job`]
//! settles the region latch on drop — executed, panicked, or dropped
//! unexecuted in a dead worker's channel — and a failed send respawns
//! the worker into its slot and re-sends the job, so the executor
//! survives any number of worker deaths.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Condvar, Mutex, OnceLock};

thread_local! {
    static IN_POOL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    static WORKER_ID: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

/// True on executor worker threads. Parallel entry points consult this to
/// run nested regions serially: a worker that re-dispatched to the pool
/// could wait on a job queued behind the very job it is executing.
pub(crate) fn in_pool() -> bool {
    IN_POOL.with(std::cell::Cell::get)
}

/// Stable observability label for the executing thread: `w00`, `w01`, …
/// on executor workers, `caller` on every other thread. Worker ids are
/// slot positions, which are deterministic (respawns reuse the dead
/// worker's slot, so ids never grow past the pool size).
pub(crate) fn thread_label() -> String {
    match WORKER_ID.with(std::cell::Cell::get) {
        usize::MAX => "caller".to_owned(),
        id => format!("w{id:02}"),
    }
}

/// How a parallel region failed. `run_region` reports this instead of
/// panicking so the `try_par_*` entry points can surface a typed error
/// while the plain entry points re-raise.
pub(crate) enum RegionError {
    /// The caller-thread share of the region panicked; the payload is
    /// preserved so plain entry points can resume the original unwind.
    Caller(Box<dyn std::any::Any + Send + 'static>),
    /// A pooled worker's share panicked (or its job was dropped by a
    /// dying worker). Worker payloads are consumed on the worker thread.
    Worker,
}

/// One participant's deque of chunk ids, packed `next:u32 | end:u32` into
/// a single CAS word. The owner pops from the front, thieves pop from the
/// back; both sides shrink the window until `next == end`.
struct ChunkDeque(AtomicU64);

impl ChunkDeque {
    fn new(start: u32, end: u32) -> Self {
        ChunkDeque(AtomicU64::new((u64::from(start) << 32) | u64::from(end)))
    }

    fn unpack(word: u64) -> (u32, u32) {
        ((word >> 32) as u32, word as u32)
    }

    /// Owner side: claim the front chunk, if any remain.
    fn pop_front(&self) -> Option<usize> {
        let mut word = self.0.load(Ordering::Relaxed);
        loop {
            let (next, end) = Self::unpack(word);
            if next >= end {
                return None;
            }
            let updated = (u64::from(next + 1) << 32) | u64::from(end);
            match self
                .0
                .compare_exchange_weak(word, updated, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return Some(next as usize),
                Err(w) => word = w,
            }
        }
    }

    /// Thief side: claim the back chunk, if any remain.
    fn pop_back(&self) -> Option<usize> {
        let mut word = self.0.load(Ordering::Relaxed);
        loop {
            let (next, end) = Self::unpack(word);
            if next >= end {
                return None;
            }
            let updated = (u64::from(next) << 32) | u64::from(end - 1);
            match self
                .0
                .compare_exchange_weak(word, updated, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return Some((end - 1) as usize),
                Err(w) => word = w,
            }
        }
    }
}

/// Everything one region's participants share, living on the dispatching
/// thread's stack for the duration of [`run_region`]. The latch protocol
/// (`remaining` under `lock`, signalled through `done`) is what makes the
/// stack lifetime sound: `run_region` does not return until every
/// dispatched job has settled, on success *and* on unwind.
struct Region<'a> {
    /// One deque per participant; index 0 is the caller's.
    deques: Vec<ChunkDeque>,
    /// The chunk body. Participants only dereference this while the
    /// region is alive (the latch guarantees it).
    process: &'a (dyn Fn(usize) + Sync),
    /// Dispatched jobs that have not yet settled.
    remaining: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

impl Region<'_> {
    /// Drain the participant's own deque front-to-back, then steal from
    /// the other participants' backs in a fixed scan order.
    fn execute(&self, participant: usize) {
        let mut own = 0u64;
        while let Some(chunk) = self.deques[participant].pop_front() {
            (self.process)(chunk);
            own += 1;
        }
        let mut stolen = 0u64;
        let p = self.deques.len();
        for offset in 1..p {
            let victim = (participant + offset) % p;
            while let Some(chunk) = self.deques[victim].pop_back() {
                (self.process)(chunk);
                stolen += 1;
            }
        }
        if (own > 0 || stolen > 0) && obs::enabled() {
            obs::count(&format!("par.pool.chunks.{}", thread_label()), own + stolen);
            obs::count("par.pool.steals", stolen);
        }
    }

    /// Settle one dispatched job: mark the region panicked unless the job
    /// ran to completion, then decrement the latch under the lock and wake
    /// the caller. After the notify the region must not be touched — the
    /// caller is free to return once it observes zero under the lock.
    fn settle(&self, finished: bool) {
        if !finished {
            self.panicked.store(true, Ordering::Release);
        }
        let mut remaining = self
            .remaining
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *remaining -= 1;
        self.done.notify_one();
    }
}

/// One dispatched unit of work: a participant slot in a region, with the
/// region's lifetime erased. Settling happens in `Drop`, so a job dropped
/// unexecuted (a dead worker's queued jobs, or an unwind past the body)
/// still releases the caller instead of deadlocking it.
struct Job {
    /// SAFETY: points at a `Region` that [`run_region`] keeps alive until
    /// every job has settled its latch — which `Drop` below guarantees
    /// happens exactly once per job on every path.
    region: *const Region<'static>,
    participant: usize,
    finished: bool,
}

// SAFETY: the pointee is Sync (shared by design across participants) and
// the latch protocol keeps it alive for the job's whole lifetime.
unsafe impl Send for Job {}

impl Drop for Job {
    fn drop(&mut self) {
        // SAFETY: see the field invariant — the region outlives the job.
        unsafe { (*self.region).settle(self.finished) };
    }
}

/// A pooled worker's dispatch handle. `alive` flips to false *before* the
/// worker begins dying, so a dispatcher never enqueues a job into a
/// channel whose receiver is about to be dropped mid-unwind — the settled
/// latch can wake a caller while the dead worker's stack is still being
/// torn down, and a send that "succeeds" in that window would be dropped
/// unexecuted and poison an innocent region.
struct WorkerSlot {
    tx: Sender<Job>,
    alive: std::sync::Arc<AtomicBool>,
}

static POOL: OnceLock<Mutex<Vec<WorkerSlot>>> = OnceLock::new();

fn spawn_worker(id: usize) -> WorkerSlot {
    let (tx, rx) = channel::<Job>();
    let alive = std::sync::Arc::new(AtomicBool::new(true));
    let flag = std::sync::Arc::clone(&alive);
    std::thread::Builder::new()
        .name(format!("tdf-par-{id}"))
        .spawn(move || {
            IN_POOL.with(|f| f.set(true));
            WORKER_ID.with(|w| w.set(id));
            worker_loop(&rx, &flag);
        })
        .expect("spawn tdf-par worker");
    WorkerSlot { tx, alive }
}

fn worker_loop(rx: &Receiver<Job>, alive: &AtomicBool) {
    loop {
        let Some(mut job) = next_job(rx) else { return };
        // Injected fault: the worker dies after accepting a job (one draw
        // per dispatched job, the same accounting as the original pool).
        // The unwind drops `job` un-finished, which settles the latch and
        // flags the region; the liveness flag (and, as a backstop, the
        // closed channel) makes the next dispatch respawn this slot.
        if faultkit::fire("par.worker_panic") {
            alive.store(false, Ordering::Release);
            panic!("tdf-faultkit: injected pool-worker death (par.worker_panic)");
        }
        // SAFETY: the region is alive until this job settles (on drop).
        let region = unsafe { &*job.region };
        job.finished = catch_unwind(AssertUnwindSafe(|| region.execute(job.participant))).is_ok();
        drop(job);
    }
}

/// Spin-then-block receive: keeps hand-off latency low when parallel
/// regions arrive back to back, parks otherwise. The spin budget is zero
/// on a single-core host — spinning there only steals the caller's
/// timeslice.
fn next_job(rx: &Receiver<Job>) -> Option<Job> {
    let budget = if crate::measured_cores() > 1 { 2048 } else { 0 };
    for spin in 0..budget {
        match rx.try_recv() {
            Ok(job) => return Some(job),
            Err(TryRecvError::Disconnected) => return None,
            Err(TryRecvError::Empty) => {
                if spin % 64 == 63 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }
    rx.recv().ok()
}

/// Contiguous block of `0..num_chunks` owned by `participant` out of `p`:
/// a pure function of `(num_chunks, p)`, so the initial assignment is
/// deterministic on every host and at every thread count.
fn block_of(num_chunks: usize, p: usize, participant: usize) -> (u32, u32) {
    let base = num_chunks / p;
    let rem = num_chunks % p;
    let start = participant * base + participant.min(rem);
    let len = base + usize::from(participant < rem);
    (start as u32, (start + len) as u32)
}

/// Executes `process(chunk)` for every chunk of `0..num_chunks` across
/// the calling thread plus `helpers` pooled workers, returning only after
/// every participant has settled — on success *and* on failure, so the
/// borrow never escapes. Dead workers (closed channels) are respawned
/// into their slot before the job is re-sent.
pub(crate) fn run_region(
    num_chunks: usize,
    helpers: usize,
    process: &(dyn Fn(usize) + Sync),
) -> Result<(), RegionError> {
    debug_assert!(helpers >= 1, "sequential paths bypass the executor");
    let participants = helpers + 1;
    let region = Region {
        deques: (0..participants)
            .map(|p| {
                let (start, end) = block_of(num_chunks, participants, p);
                ChunkDeque::new(start, end)
            })
            .collect(),
        process,
        remaining: Mutex::new(helpers),
        done: Condvar::new(),
        panicked: AtomicBool::new(false),
    };
    // SAFETY: the latch-wait below outlives every dispatched use of this
    // pointer, on success *and* on unwind: every Job settles the latch in
    // Drop, even when dropped unexecuted, and run_region does not return
    // until the latch reads zero.
    let region_ptr = std::ptr::addr_of!(region).cast::<Region<'static>>();
    {
        // Poison recovery: the only writes under this lock are slot
        // replacements and appends of fully-constructed senders, so the
        // list is structurally valid even if a previous holder panicked.
        let mut workers = POOL
            .get_or_init(|| Mutex::new(Vec::new()))
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while workers.len() < helpers {
            let id = workers.len();
            workers.push(spawn_worker(id));
        }
        for slot in 0..helpers {
            let job = Job {
                region: region_ptr,
                participant: slot + 1,
                finished: false,
            };
            if !workers[slot].alive.load(Ordering::Acquire) {
                // The worker is dead or dying (its channel may still
                // accept sends mid-unwind). Replace it before dispatch.
                obs::count("par.pool.respawned_workers", 1);
                workers[slot] = spawn_worker(slot);
            }
            if let Err(std::sync::mpsc::SendError(job)) = workers[slot].tx.send(job) {
                // Backstop: the worker died without flagging itself
                // (receiver gone). Replace it and re-send the same job.
                obs::count("par.pool.respawned_workers", 1);
                workers[slot] = spawn_worker(slot);
                workers[slot]
                    .tx
                    .send(job)
                    .expect("freshly spawned tdf-par worker accepts jobs");
            }
        }
    }
    let caller = catch_unwind(AssertUnwindSafe(|| region.execute(0)));
    // Fast path: helpers usually finish alongside the caller; a brief
    // spin avoids the mutex entirely for back-to-back small regions.
    let mut settled = false;
    for _ in 0..512 {
        let remaining = region
            .remaining
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if *remaining == 0 {
            settled = true;
            break;
        }
        drop(remaining);
        std::hint::spin_loop();
    }
    if !settled {
        let mut remaining = region
            .remaining
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while *remaining > 0 {
            remaining = self::wait(&region.done, remaining);
        }
    }
    match caller {
        Err(payload) => Err(RegionError::Caller(payload)),
        Ok(()) => {
            if region.panicked.load(Ordering::Acquire) {
                Err(RegionError::Worker)
            } else {
                Ok(())
            }
        }
    }
}

/// `Condvar::wait` with poisoned-mutex recovery, mirroring every other
/// lock acquisition in the executor.
fn wait<'a>(
    cv: &Condvar,
    guard: std::sync::MutexGuard<'a, usize>,
) -> std::sync::MutexGuard<'a, usize> {
    cv.wait(guard)
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_partition_is_exact_and_contiguous() {
        for num_chunks in [0usize, 1, 2, 3, 7, 64, 100, 1000] {
            for p in 1..=8usize {
                let blocks: Vec<(u32, u32)> = (0..p).map(|i| block_of(num_chunks, p, i)).collect();
                assert_eq!(blocks[0].0, 0);
                assert_eq!(blocks[p - 1].1 as usize, num_chunks);
                for w in blocks.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "contiguous at {num_chunks}/{p}");
                }
                let sizes: Vec<u32> = blocks.iter().map(|(s, e)| e - s).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "balanced at {num_chunks}/{p}");
            }
        }
    }

    #[test]
    fn deque_front_and_back_never_hand_out_a_chunk_twice() {
        let dq = ChunkDeque::new(0, 100);
        let mut seen = [false; 100];
        loop {
            let front = dq.pop_front();
            let back = dq.pop_back();
            for c in [front, back].into_iter().flatten() {
                assert!(!seen[c], "chunk {c} claimed twice");
                seen[c] = true;
            }
            if front.is_none() && back.is_none() {
                break;
            }
        }
        assert!(seen.iter().all(|&s| s), "every chunk claimed exactly once");
    }
}
