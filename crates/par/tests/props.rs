//! Property tests: every `par` entry point must agree with its serial
//! counterpart — bit for bit — at each of the thread counts the issue
//! pins down (`TDF_THREADS ∈ {1, 2, 7}`), on arbitrary inputs and chunk
//! sizes.

use check::prelude::*;

const THREADS: [usize; 3] = [1, 2, 7];

props! {
    #[test]
    fn par_map_matches_serial(xs in vec(any::<u64>(), 0..200)) {
        let want: Vec<u64> = xs.iter().map(|&x| x.wrapping_mul(31).rotate_left(7)).collect();
        for t in THREADS {
            let got = par::with_threads(t, || {
                par::par_map(&xs, |&x| x.wrapping_mul(31).rotate_left(7))
            });
            prop_assert_eq!(&got, &want);
        }
    }

    #[test]
    fn par_map_range_matches_serial(n in 0usize..300, salt in any::<u64>()) {
        let want: Vec<u64> = (0..n).map(|i| (i as u64) ^ salt).collect();
        for t in THREADS {
            let got = par::with_threads(t, || par::par_map_range(n, |i| (i as u64) ^ salt));
            prop_assert_eq!(&got, &want);
        }
    }

    #[test]
    fn par_chunks_reduce_float_sum_is_bit_identical(
        xs in vec(any::<u32>(), 0..200),
        chunk in 0usize..17,
    ) {
        // Floating-point addition is not associative, so bit-identical
        // sums across thread counts prove the fold order is fixed.
        let fs: Vec<f64> = xs.iter().map(|&x| f64::from(x) * 1e-3 + 0.1).collect();
        let reduce = || {
            par::par_chunks_reduce(
                &fs,
                chunk,
                |c| c.iter().sum::<f64>(),
                |a, b| a + b,
            )
        };
        let baseline = par::with_threads(1, reduce);
        for t in THREADS {
            let got = par::with_threads(t, reduce);
            prop_assert_eq!(got.map(f64::to_bits), baseline.map(f64::to_bits));
        }
    }

    #[test]
    fn par_index_reduce_concat_preserves_order(n in 0usize..150, chunk in 0usize..9) {
        // Concatenation is order-sensitive: equality with the serial
        // result shows chunks merge in index order.
        let want: Vec<usize> = (0..n).collect();
        for t in THREADS {
            let got = par::with_threads(t, || {
                par::par_index_reduce(
                    n,
                    chunk,
                    |range| range.collect::<Vec<usize>>(),
                    |mut a, b| {
                        a.extend(b);
                        a
                    },
                )
            });
            prop_assert_eq!(got.clone().unwrap_or_default(), want.clone());
            prop_assert_eq!(got.is_none(), n == 0);
        }
    }
}
