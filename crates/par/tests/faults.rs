//! Injected pool-worker deaths (`par.worker_panic`) and recovery.
//!
//! These live in their own test binary because the fault plan is
//! process-global: a plan installed here must never race the pooled
//! regions of unrelated tests. Within the binary a mutex serialises the
//! tests that install plans.

use par::{par_map_range, try_par_map_range, with_cores, with_threads, ParError};
use std::sync::Mutex;

static PLAN: Mutex<()> = Mutex::new(());

/// `with_threads(4)` plus a pinned 4-core measurement, so the executor
/// enlists workers (and thus draws `par.worker_panic`) even on a
/// single-core CI host.
fn pooled_t4<T>(f: impl FnOnce() -> T) -> T {
    with_cores(4, || with_threads(4, f))
}

fn with_fault_plan<T>(text: &str, f: impl FnOnce() -> T) -> T {
    let _guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    faultkit::set_plan(Some(faultkit::FaultPlan::parse(text).unwrap()));
    let out = f();
    faultkit::set_plan(None);
    out
}

/// Big enough to clear the sequential-fallback threshold so the pool is
/// actually exercised.
const N: usize = 5000;

#[test]
fn injected_worker_death_is_a_typed_error_and_the_pool_recovers() {
    let err = with_fault_plan("par.worker_panic=1", || {
        pooled_t4(|| try_par_map_range(N, |i| i as u64))
    })
    .expect_err("one worker died mid-region");
    assert_eq!(err, ParError::WorkerPanicked);

    // Subsequent regions on the same pool run to completion: the dead
    // worker's channel is found closed at the next dispatch and a
    // replacement is spawned into its slot.
    let ok = pooled_t4(|| par_map_range(N, |i| (i * 3) as u64));
    assert!(ok.iter().enumerate().all(|(i, &v)| v == (i * 3) as u64));
}

#[test]
fn plain_entry_points_panic_rather_than_abort_on_worker_death() {
    let result = with_fault_plan("par.worker_panic=1", || {
        std::panic::catch_unwind(|| pooled_t4(|| par_map_range(N, |i| i)))
    });
    let payload = result.expect_err("region must report the lost worker");
    let message = payload
        .downcast_ref::<&str>()
        .copied()
        .map(str::to_owned)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(
        message.contains("pooled worker panicked"),
        "got {message:?}"
    );
    // And the pool is reusable afterwards.
    let ok = pooled_t4(|| par_map_range(N, |i| i + 1));
    assert_eq!(ok[N - 1], N);
}

#[test]
fn repeated_worker_deaths_respawn_repeatedly() {
    for round in 0..3 {
        let err = with_fault_plan("par.worker_panic=1", || {
            pooled_t4(|| try_par_map_range(N, |i| i as u64))
        });
        assert_eq!(err, Err(ParError::WorkerPanicked), "round {round}");
        let ok = pooled_t4(|| try_par_map_range(N, |i| i as u64)).unwrap();
        assert_eq!(ok.len(), N, "round {round}");
    }
}

#[test]
fn zero_rate_worker_panic_plan_is_bit_identical_to_no_plan() {
    let work = || pooled_t4(|| par_map_range(N, |i| (i as f64).sqrt().to_bits()));
    let baseline = {
        let _guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
        faultkit::set_plan(None);
        work()
    };
    let gated = with_fault_plan("par.worker_panic=7@0", work);
    assert_eq!(baseline, gated);
}
