//! # tdf-hippocratic
//!
//! A hippocratic-database layer after Agrawal–Kiernan–Srikant–Xu [4] and
//! the healthcare deployment described in [3] — the paper's §1/§2 example
//! of a "real-world technology integrating k-anonymization for respondent
//! privacy and PPDM based on noise addition for owner privacy".
//!
//! Ten founding principles distilled to their executable core:
//!
//! * **purpose specification & consent** — every attribute is disclosed
//!   only for purposes the policy names and the respondent consented to;
//! * **limited disclosure** — queries are *rewritten*: unauthorized
//!   columns come back suppressed, unconsented records are filtered out;
//! * **limited retention** — records past their retention horizon vanish;
//! * **compliance/audit** — every access is journaled;
//! * **safety** — external releases go through k-anonymization
//!   (respondent privacy) and/or noise masking (owner privacy) from
//!   `tdf-anonymity` / `tdf-sdc`.

pub mod db;
pub mod policy;

pub use db::{AccessRecord, HippocraticDb};
pub use policy::{Consent, PolicyRule, PrivacyPolicy, Purpose};
