//! Purposes, policy rules and consent.

use std::collections::BTreeSet;

/// A declared processing purpose (the unit of hippocratic access control).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Purpose {
    /// Direct clinical care of the respondent.
    Treatment,
    /// Billing and insurance settlement.
    Billing,
    /// Medical research (usually on anonymized releases).
    Research,
    /// Marketing — the canonical purpose respondents refuse.
    Marketing,
}

impl Purpose {
    /// All purposes, for enumeration in tests and reports.
    pub const ALL: [Purpose; 4] = [
        Purpose::Treatment,
        Purpose::Billing,
        Purpose::Research,
        Purpose::Marketing,
    ];
}

/// One policy rule: for `purpose`, the named attributes may be disclosed,
/// and records are kept for at most `retention_days` after collection.
#[derive(Debug, Clone)]
pub struct PolicyRule {
    /// The purpose the rule governs.
    pub purpose: Purpose,
    /// Attributes disclosable for this purpose.
    pub attributes: BTreeSet<String>,
    /// Retention horizon in days.
    pub retention_days: u32,
}

/// A full privacy policy: one rule per purpose (absent purpose = no access).
#[derive(Debug, Clone, Default)]
pub struct PrivacyPolicy {
    rules: Vec<PolicyRule>,
}

impl PrivacyPolicy {
    /// Empty policy (everything denied).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) the rule for a purpose.
    pub fn allow(mut self, purpose: Purpose, attributes: &[&str], retention_days: u32) -> Self {
        self.rules.retain(|r| r.purpose != purpose);
        self.rules.push(PolicyRule {
            purpose,
            attributes: attributes.iter().map(|s| (*s).to_owned()).collect(),
            retention_days,
        });
        self
    }

    /// The rule for `purpose`, if any.
    pub fn rule(&self, purpose: Purpose) -> Option<&PolicyRule> {
        self.rules.iter().find(|r| r.purpose == purpose)
    }

    /// True when `attribute` is disclosable for `purpose`.
    pub fn allows(&self, purpose: Purpose, attribute: &str) -> bool {
        self.rule(purpose)
            .is_some_and(|r| r.attributes.contains(attribute))
    }

    /// Parses the policy text format (one rule per line, `#` comments):
    ///
    /// ```text
    /// purpose treatment: height, weight, blood_pressure; retention 3650
    /// purpose billing:   blood_pressure; retention 365
    /// ```
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut policy = PrivacyPolicy::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |msg: &str| format!("policy line {}: {msg}", lineno + 1);
            let rest = line
                .strip_prefix("purpose ")
                .ok_or_else(|| err("expected `purpose <name>: ...`"))?;
            let (name, rest) = rest
                .split_once(':')
                .ok_or_else(|| err("missing `:` after purpose name"))?;
            let purpose = match name.trim().to_ascii_lowercase().as_str() {
                "treatment" => Purpose::Treatment,
                "billing" => Purpose::Billing,
                "research" => Purpose::Research,
                "marketing" => Purpose::Marketing,
                other => return Err(err(&format!("unknown purpose `{other}`"))),
            };
            let (attrs_part, retention_part) = rest
                .split_once(';')
                .ok_or_else(|| err("missing `; retention <days>`"))?;
            let attributes: Vec<&str> = attrs_part
                .split(',')
                .map(str::trim)
                .filter(|a| !a.is_empty())
                .collect();
            if attributes.is_empty() {
                return Err(err("rule lists no attributes"));
            }
            let retention: u32 = retention_part
                .trim()
                .strip_prefix("retention ")
                .ok_or_else(|| err("expected `retention <days>`"))?
                .trim()
                .parse()
                .map_err(|_| err("retention must be a number of days"))?;
            policy = policy.allow(purpose, &attributes, retention);
        }
        Ok(policy)
    }
}

/// Per-respondent consent: the set of purposes the respondent agreed to.
#[derive(Debug, Clone, Default)]
pub struct Consent {
    purposes: BTreeSet<Purpose>,
}

impl Consent {
    /// Consent to nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// Consent to every purpose.
    pub fn all() -> Self {
        Self {
            purposes: Purpose::ALL.into_iter().collect(),
        }
    }

    /// Consent to the listed purposes.
    pub fn to(purposes: &[Purpose]) -> Self {
        Self {
            purposes: purposes.iter().copied().collect(),
        }
    }

    /// True when the respondent consented to `purpose`.
    pub fn covers(&self, purpose: Purpose) -> bool {
        self.purposes.contains(&purpose)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_rules_govern_attributes() {
        let p = PrivacyPolicy::new()
            .allow(
                Purpose::Treatment,
                &["height", "weight", "blood_pressure", "aids"],
                3650,
            )
            .allow(Purpose::Billing, &["blood_pressure"], 365);
        assert!(p.allows(Purpose::Treatment, "aids"));
        assert!(!p.allows(Purpose::Billing, "aids"));
        assert!(!p.allows(Purpose::Marketing, "height"));
        assert_eq!(p.rule(Purpose::Billing).unwrap().retention_days, 365);
    }

    #[test]
    fn allow_replaces_previous_rule() {
        let p = PrivacyPolicy::new()
            .allow(Purpose::Research, &["height"], 10)
            .allow(Purpose::Research, &["weight"], 20);
        assert!(!p.allows(Purpose::Research, "height"));
        assert!(p.allows(Purpose::Research, "weight"));
    }

    #[test]
    fn policy_text_format_round_trips() {
        let text = "
# hospital policy
purpose treatment: height, weight, blood_pressure, aids; retention 3650
purpose billing:   blood_pressure; retention 365
purpose research:  height, weight; retention 1825
";
        let p = PrivacyPolicy::parse(text).unwrap();
        assert!(p.allows(Purpose::Treatment, "aids"));
        assert!(p.allows(Purpose::Billing, "blood_pressure"));
        assert!(!p.allows(Purpose::Billing, "aids"));
        assert!(!p.allows(Purpose::Marketing, "height"));
        assert_eq!(p.rule(Purpose::Research).unwrap().retention_days, 1825);
    }

    #[test]
    fn policy_parse_errors_carry_line_numbers() {
        for (text, needle) in [
            ("bogus line", "line 1"),
            ("purpose treatment height; retention 10", "missing `:`"),
            ("purpose lobbying: a; retention 10", "unknown purpose"),
            ("purpose billing: ; retention 10", "no attributes"),
            ("purpose billing: a", "retention"),
            ("purpose billing: a; retention soon", "number of days"),
        ] {
            let e = PrivacyPolicy::parse(text).unwrap_err();
            assert!(e.contains(needle), "{text}: {e}");
        }
    }

    #[test]
    fn consent_sets() {
        let c = Consent::to(&[Purpose::Treatment, Purpose::Research]);
        assert!(c.covers(Purpose::Treatment));
        assert!(!c.covers(Purpose::Marketing));
        assert!(Consent::all().covers(Purpose::Marketing));
        assert!(!Consent::none().covers(Purpose::Treatment));
    }
}
