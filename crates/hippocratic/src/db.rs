//! The hippocratic database: purpose-bound access with an audit trail.

use crate::policy::{Consent, PrivacyPolicy, Purpose};
use rngkit::Rng;
use tdf_anonymity::is_k_anonymous;
use tdf_microdata::{Dataset, Error, Result, Value};
use tdf_sdc::microaggregation::mdav_microaggregate;
use tdf_sdc::noise::{add_noise, NoiseConfig};

/// One journaled access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessRecord {
    /// Declared purpose.
    pub purpose: Purpose,
    /// Requested attributes.
    pub attributes: Vec<String>,
    /// Number of records disclosed.
    pub records_disclosed: usize,
    /// Whether the access was served (policy allowed something).
    pub served: bool,
}

/// A dataset guarded by a privacy policy, per-respondent consent and
/// collection timestamps.
#[derive(Debug)]
pub struct HippocraticDb {
    data: Dataset,
    policy: PrivacyPolicy,
    consent: Vec<Consent>,
    /// Age of each record in days since collection.
    age_days: Vec<u32>,
    audit: Vec<AccessRecord>,
}

impl HippocraticDb {
    /// Creates a guarded database. `consent` and `age_days` must align with
    /// the dataset's records.
    pub fn new(
        data: Dataset,
        policy: PrivacyPolicy,
        consent: Vec<Consent>,
        age_days: Vec<u32>,
    ) -> Result<Self> {
        if consent.len() != data.num_rows() || age_days.len() != data.num_rows() {
            return Err(Error::InvalidParameter(
                "consent and age vectors must align with records".into(),
            ));
        }
        Ok(Self {
            data,
            policy,
            consent,
            age_days,
            audit: Vec::new(),
        })
    }

    /// The audit trail of every access ever made.
    pub fn audit_trail(&self) -> &[AccessRecord] {
        &self.audit
    }

    /// Row indices currently live for `purpose`: consented and within the
    /// purpose's retention horizon.
    fn live_rows(&self, purpose: Purpose) -> Vec<usize> {
        let retention = match self.policy.rule(purpose) {
            Some(r) => r.retention_days,
            None => return Vec::new(),
        };
        (0..self.data.num_rows())
            .filter(|&i| self.consent[i].covers(purpose) && self.age_days[i] <= retention)
            .collect()
    }

    /// Purpose-bound query: returns the requested attributes for every
    /// live record, with unauthorized attributes *suppressed* rather than
    /// erroring (limited disclosure).
    pub fn access(&mut self, purpose: Purpose, attributes: &[&str]) -> Result<Dataset> {
        // Validate attribute names first.
        let mut cols = Vec::with_capacity(attributes.len());
        for a in attributes {
            cols.push(self.data.schema().index_of(a)?);
        }
        let rows = self.live_rows(purpose);
        // Columnar gather of the live records, then whole-column
        // suppression of the attributes the policy disallows.
        let mut out = self.data.project(&cols).take(&rows);
        for (j, a) in attributes.iter().enumerate() {
            if !self.policy.allows(purpose, a) {
                for i in 0..out.num_rows() {
                    out.set_value(i, j, Value::Missing)?;
                }
            }
        }
        let served = attributes.iter().any(|a| self.policy.allows(purpose, a)) && !rows.is_empty();
        self.audit.push(AccessRecord {
            purpose,
            attributes: attributes.iter().map(|s| (*s).to_owned()).collect(),
            records_disclosed: if served { out.num_rows() } else { 0 },
            served,
        });
        Ok(out)
    }

    /// External research release: k-anonymized via microaggregation of the
    /// quasi-identifiers (respondent privacy) and noise-masked on the
    /// numeric confidential attributes (owner privacy) — the combination
    /// [3] deploys, as the paper recounts in §2.
    pub fn research_release<R: Rng + ?Sized>(
        &mut self,
        k: usize,
        noise_alpha: f64,
        rng: &mut R,
    ) -> Result<Dataset> {
        let rows = self.live_rows(Purpose::Research);
        if rows.is_empty() {
            return Err(Error::EmptyDataset);
        }
        let consented = self.data.take(&rows);
        let qi = consented.schema().quasi_identifier_indices();
        let anonymized = mdav_microaggregate(&consented, &qi, k)?.data;
        let numeric_conf: Vec<usize> = anonymized
            .schema()
            .confidential_indices()
            .into_iter()
            .filter(|&c| anonymized.schema().attribute(c).kind.is_numeric())
            .collect();
        let released = if numeric_conf.is_empty() || noise_alpha == 0.0 {
            anonymized
        } else {
            add_noise(
                &anonymized,
                &NoiseConfig::new(noise_alpha, numeric_conf),
                rng,
            )?
        };
        debug_assert!(is_k_anonymous(&released, k));
        self.audit.push(AccessRecord {
            purpose: Purpose::Research,
            attributes: self
                .data
                .schema()
                .names()
                .iter()
                .map(|s| (*s).to_owned())
                .collect(),
            records_disclosed: released.num_rows(),
            served: true,
        });
        Ok(released)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdf_microdata::patients;
    use tdf_microdata::rng::seeded;
    use tdf_microdata::synth::{patients as synth, PatientConfig};

    fn policy() -> PrivacyPolicy {
        PrivacyPolicy::new()
            .allow(
                Purpose::Treatment,
                &["height", "weight", "blood_pressure", "aids"],
                3650,
            )
            .allow(Purpose::Billing, &["blood_pressure"], 365)
            .allow(
                Purpose::Research,
                &["height", "weight", "blood_pressure", "aids"],
                1825,
            )
    }

    fn db_with(consents: Vec<Consent>, ages: Vec<u32>) -> HippocraticDb {
        HippocraticDb::new(patients::dataset1(), policy(), consents, ages).unwrap()
    }

    fn all_consent_db() -> HippocraticDb {
        db_with(vec![Consent::all(); 10], vec![0; 10])
    }

    #[test]
    fn treatment_sees_everything_consented() {
        let mut db = all_consent_db();
        let out = db.access(Purpose::Treatment, &["height", "aids"]).unwrap();
        assert_eq!(out.num_rows(), 10);
        assert!(!out.value(0, 1).is_missing());
    }

    #[test]
    fn billing_gets_unauthorized_columns_suppressed() {
        let mut db = all_consent_db();
        let out = db
            .access(Purpose::Billing, &["blood_pressure", "aids"])
            .unwrap();
        assert_eq!(out.num_rows(), 10);
        for i in 0..out.num_rows() {
            assert!(!out.value(i, 0).is_missing(), "blood_pressure allowed");
            assert!(
                out.value(i, 1).is_missing(),
                "aids must be suppressed for billing"
            );
        }
    }

    #[test]
    fn marketing_gets_nothing() {
        let mut db = all_consent_db();
        let out = db.access(Purpose::Marketing, &["height"]).unwrap();
        assert_eq!(out.num_rows(), 0);
        assert!(!db.audit_trail()[0].served);
    }

    #[test]
    fn unconsented_respondents_are_invisible() {
        let mut consents = vec![Consent::all(); 10];
        consents[0] = Consent::none();
        consents[1] = Consent::to(&[Purpose::Billing]);
        let mut db = db_with(consents, vec![0; 10]);
        let out = db.access(Purpose::Treatment, &["height"]).unwrap();
        assert_eq!(out.num_rows(), 8);
    }

    #[test]
    fn retention_expires_records_per_purpose() {
        let mut ages = vec![0u32; 10];
        ages[3] = 400; // beyond billing's 365, within treatment's 3650
        let mut db = db_with(vec![Consent::all(); 10], ages);
        assert_eq!(
            db.access(Purpose::Billing, &["blood_pressure"])
                .unwrap()
                .num_rows(),
            9
        );
        assert_eq!(
            db.access(Purpose::Treatment, &["height"])
                .unwrap()
                .num_rows(),
            10
        );
    }

    #[test]
    fn audit_trail_records_every_access() {
        let mut db = all_consent_db();
        db.access(Purpose::Treatment, &["height"]).unwrap();
        db.access(Purpose::Marketing, &["height"]).unwrap();
        let trail = db.audit_trail();
        assert_eq!(trail.len(), 2);
        assert!(trail[0].served);
        assert_eq!(trail[0].records_disclosed, 10);
        assert!(!trail[1].served);
        assert_eq!(trail[1].records_disclosed, 0);
    }

    #[test]
    fn research_release_is_k_anonymous_and_masked() {
        let data = synth(&PatientConfig {
            n: 200,
            ..Default::default()
        });
        let n = data.num_rows();
        let mut db =
            HippocraticDb::new(data.clone(), policy(), vec![Consent::all(); n], vec![0; n])
                .unwrap();
        let released = db.research_release(5, 0.3, &mut seeded(1)).unwrap();
        assert!(is_k_anonymous(&released, 5));
        // Confidential blood pressures are perturbed.
        let changed = (0..released.num_rows())
            .filter(|&i| released.value(i, 2) != data.value(i, 2))
            .count();
        assert!(changed > n / 2);
    }

    #[test]
    fn research_release_without_consent_fails() {
        let mut db = db_with(vec![Consent::to(&[Purpose::Treatment]); 10], vec![0; 10]);
        assert!(db.research_release(3, 0.2, &mut seeded(2)).is_err());
    }

    #[test]
    fn misaligned_vectors_rejected() {
        let r = HippocraticDb::new(
            patients::dataset1(),
            policy(),
            vec![Consent::all(); 3],
            vec![0; 10],
        );
        assert!(r.is_err());
    }

    #[test]
    fn unknown_attribute_is_an_error() {
        let mut db = all_consent_db();
        assert!(db.access(Purpose::Treatment, &["salary"]).is_err());
    }
}
