//! In-tree property-based testing.
//!
//! A minimal, dependency-free replacement for the `proptest` slice the
//! workspace uses: integer-range and `Vec` strategies, a [`props!`]
//! macro that declares `#[test]` functions over generated inputs, and
//! greedy shrinking toward a minimal counterexample.
//!
//! ```
//! use check::prelude::*;
//!
//! props! {
//!     #![cases(64)]
//!
//!     #[test]
//!     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! ```
//!
//! Failures print the seed, the case number, and the shrunken inputs.
//! Runs are deterministic: the per-test seed is derived from the test
//! name, XORed with `TDF_CHECK_SEED` when set. `TDF_CHECK_CASES`
//! overrides the case count globally (useful for a quick CI smoke pass
//! or an overnight soak).

// `#[test]` inside the doctest above is the `props!` grammar, not a unit
// test that expects to run.
#![allow(clippy::test_attr_in_doctest)]

pub mod strategy;

pub use strategy::{any, vec, Strategy};

use rngkit::{SeedableRng, StdRng};

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — generate another.
    Reject,
    /// The property failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Outcome of a property body.
pub type CaseResult = Result<(), TestCaseError>;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful cases required.
    pub cases: u32,
    /// Maximum rejected cases (`prop_assume!`) before giving up.
    pub max_rejects: u32,
    /// Maximum shrink steps explored after a failure.
    pub max_shrink_steps: u32,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            cases: 64,
            max_rejects: 4096,
            max_shrink_steps: 2048,
        }
    }
}

impl Config {
    /// A config running `cases` cases (other limits default).
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Default::default()
        }
    }

    fn effective_cases(&self) -> u32 {
        match std::env::var("TDF_CHECK_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

/// FNV-1a over the test name: a stable per-test base seed.
fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn env_seed() -> u64 {
    std::env::var("TDF_CHECK_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Runs `prop` over `cfg.cases` inputs drawn from `strat`, shrinking any
/// counterexample before panicking. This is what [`props!`] expands to;
/// call it directly for one-off checks with a custom strategy.
pub fn run<S, F>(name: &str, cfg: &Config, strat: &S, prop: F)
where
    S: Strategy,
    F: Fn(S::Value) -> CaseResult,
{
    let seed = name_seed(name) ^ env_seed();
    let mut rng = StdRng::seed_from_u64(seed);
    let cases = cfg.effective_cases();
    let mut rejects = 0u32;
    let mut passed = 0u32;
    while passed < cases {
        let value = strat.generate(&mut rng);
        match prop(value.clone()) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejects += 1;
                assert!(
                    rejects <= cfg.max_rejects,
                    "property `{name}`: too many rejected cases \
                     ({rejects} rejects for {passed} passes) — loosen prop_assume!"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                let (min_value, min_msg, steps) = shrink_failure(cfg, strat, &prop, value, msg);
                panic!(
                    "property `{name}` failed after {} passing case(s) \
                     (seed {seed}, {steps} shrink step(s)).\n\
                     minimal input: {:?}\n{}",
                    passed, min_value, min_msg
                );
            }
        }
    }
}

/// Greedily walks shrink candidates, keeping the last failing value.
fn shrink_failure<S, F>(
    cfg: &Config,
    strat: &S,
    prop: &F,
    mut value: S::Value,
    mut msg: String,
) -> (S::Value, String, u32)
where
    S: Strategy,
    F: Fn(S::Value) -> CaseResult,
{
    let mut steps = 0u32;
    'outer: while steps < cfg.max_shrink_steps {
        let mut candidates = Vec::new();
        strat.shrink(&value, &mut candidates);
        for cand in candidates {
            steps += 1;
            if steps >= cfg.max_shrink_steps {
                break 'outer;
            }
            if let Err(TestCaseError::Fail(m)) = prop(cand.clone()) {
                value = cand;
                msg = m;
                continue 'outer;
            }
        }
        break;
    }
    (value, msg, steps)
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::strategy::{any, vec, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, props};
    pub use crate::{CaseResult, Config, TestCaseError};
}

/// Asserts a condition inside a property body (returns a failure instead
/// of panicking, so the input can be shrunk).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            l,
            r
        );
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            l
        );
    }};
}

/// Rejects the current case (regenerates without counting it).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares `#[test]` functions whose arguments are drawn from
/// strategies, proptest-style:
///
/// ```ignore
/// props! {
///     #![cases(24)]                       // optional, defaults to 64
///
///     #[test]
///     fn holds(x in 0u64..100, v in vec(any::<u64>(), 0..5)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! props {
    (#![cases($cases:expr)] $($rest:tt)*) => {
        $crate::__props_impl! { ($cases) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__props_impl! { (64u32) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __props_impl {
    (($cases:expr)) => {};
    (($cases:expr)
     $(#[$meta:meta])+
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])+
        fn $name() {
            let __cfg = $crate::Config::with_cases($cases);
            let __strat = ($($strat,)+);
            $crate::run(
                stringify!($name),
                &__cfg,
                &__strat,
                |__vals| {
                    #[allow(unused_parens)]
                    let ($($arg,)+) = __vals;
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__props_impl! { ($cases) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    props! {
        #![cases(128)]

        #[test]
        fn ranges_respect_bounds(a in 10u64..20, b in -5i64..=5, n in 0usize..4) {
            prop_assert!((10..20).contains(&a));
            prop_assert!((-5..=5).contains(&b));
            prop_assert!(n < 4);
        }

        #[test]
        fn vectors_respect_length(v in vec(any::<u32>(), 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn failures_shrink_to_the_boundary() {
        // Property "x < 50" over 0..1000 must shrink to exactly 50.
        let result = std::panic::catch_unwind(|| {
            crate::run(
                "shrink_probe",
                &Config::with_cases(256),
                &(0u64..1000),
                |x| {
                    prop_assert!(x < 50, "x = {x}");
                    Ok(())
                },
            );
        });
        let err = *result
            .expect_err("property must fail")
            .downcast::<String>()
            .unwrap();
        assert!(err.contains("minimal input: 50"), "got: {err}");
    }

    #[test]
    fn vector_failures_shrink_to_minimal_length() {
        // "sum < 100" with elements in 60..=60 fails minimally at [60, 60].
        let result = std::panic::catch_unwind(|| {
            crate::run(
                "vec_shrink_probe",
                &Config::with_cases(256),
                &vec(60u64..=60, 0..10),
                |v| {
                    prop_assert!(v.iter().sum::<u64>() < 100, "sum {}", v.iter().sum::<u64>());
                    Ok(())
                },
            );
        });
        let err = *result
            .expect_err("property must fail")
            .downcast::<String>()
            .unwrap();
        assert!(err.contains("minimal input: [60, 60]"), "got: {err}");
    }

    #[test]
    fn runs_are_deterministic() {
        use std::cell::RefCell;
        let collect = || {
            let seen = RefCell::new(Vec::new());
            crate::run(
                "det_probe",
                &Config::with_cases(16),
                &(0u64..1_000_000),
                |x| {
                    seen.borrow_mut().push(x);
                    Ok(())
                },
            );
            seen.into_inner()
        };
        let a = collect();
        assert_eq!(a.len(), 16);
        assert_eq!(a, collect(), "same name + seed must replay the same cases");
    }
}
