//! Input strategies: generation plus shrink candidates.

use rngkit::{Rng, StdRng};

/// A source of random values of one type, with shrinking.
///
/// Integer ranges (`0u64..100`, `-5i32..=5`, `2u64..`), [`any`], and
/// [`vec`] all implement this, as do tuples of strategies (which is how
/// the `props!` macro handles multi-argument properties).
pub trait Strategy {
    /// The generated type.
    type Value: Clone + std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Pushes *simpler* variants of `value` (each still satisfying this
    /// strategy's constraints) onto `out`. An empty push ends shrinking.
    fn shrink(&self, value: &Self::Value, out: &mut Vec<Self::Value>);
}

/// Shrink an integer toward `origin`, respecting that every candidate
/// must remain producible by the range. Candidates: the origin itself,
/// the midpoint toward it, and one unit step.
macro_rules! int_shrink {
    ($v:expr, $origin:expr, $out:expr, $t:ty) => {{
        let v: $t = $v;
        let origin: $t = $origin;
        if v != origin {
            $out.push(origin);
            let mid = origin + (v - origin) / 2;
            if mid != v && mid != origin {
                $out.push(mid);
            }
            let step = if v > origin { v - 1 } else { v + 1 };
            if step != origin && step != mid {
                $out.push(step);
            }
        }
    }};
}

macro_rules! impl_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t, out: &mut Vec<$t>) {
                let origin = if self.contains(&0) { 0 } else { self.start };
                int_shrink!(*value, origin, out, $t);
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t, out: &mut Vec<$t>) {
                let origin = if self.contains(&0) { 0 } else { *self.start() };
                int_shrink!(*value, origin, out, $t);
            }
        }

        impl Strategy for core::ops::RangeFrom<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..=<$t>::MAX)
            }

            fn shrink(&self, value: &$t, out: &mut Vec<$t>) {
                let origin = if self.contains(&0) { 0 } else { self.start };
                int_shrink!(*value, origin, out, $t);
            }
        }
    )*};
}
impl_int_strategies!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

/// Full-domain strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

/// The full domain of an integer type: `any::<u64>()`, `any::<i128>()`, …
pub fn any<T>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

macro_rules! impl_any {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen()
            }

            fn shrink(&self, value: &$t, out: &mut Vec<$t>) {
                int_shrink!(*value, 0, out, $t);
            }
        }
    )*};
}
impl_any!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

/// Strategy for `Vec<T>` built by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    min_len: usize,
    max_len: usize,
}

/// A `Vec` of `elem`-generated values with length drawn from `len`
/// (half-open): `vec(any::<u64>(), 1..8)`.
pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "vec strategy: empty length range");
    VecStrategy {
        elem,
        min_len: len.start,
        max_len: len.end,
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.min_len..self.max_len);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>, out: &mut Vec<Vec<S::Value>>) {
        // Structural shrinks first: halve, then drop single elements.
        if value.len() > self.min_len {
            let half = (value.len() / 2).max(self.min_len);
            if half < value.len() {
                out.push(value[..half].to_vec());
                out.push(value[value.len() - half..].to_vec());
            }
            for i in 0..value.len().min(4) {
                let mut v = value.clone();
                v.remove(i);
                out.push(v);
            }
        }
        // Then element-wise shrinks on a few positions.
        for i in 0..value.len().min(4) {
            let mut cands = Vec::new();
            self.elem.shrink(&value[i], &mut cands);
            for c in cands {
                let mut v = value.clone();
                v[i] = c;
                out.push(v);
            }
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value, out: &mut Vec<Self::Value>) {
                $(
                    {
                        let mut cands = Vec::new();
                        self.$idx.shrink(&value.$idx, &mut cands);
                        for c in cands {
                            let mut v = value.clone();
                            v.$idx = c;
                            out.push(v);
                        }
                    }
                )+
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S0 0);
    (S0 0, S1 1);
    (S0 0, S1 1, S2 2);
    (S0 0, S1 1, S2 2, S3 3);
    (S0 0, S1 1, S2 2, S3 3, S4 4);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngkit::SeedableRng;

    #[test]
    fn range_shrink_moves_toward_origin() {
        let s = 10u64..100;
        let mut out = Vec::new();
        s.shrink(&40, &mut out);
        assert!(out.contains(&10), "origin candidate, got {out:?}");
        assert!(out.iter().all(|&c| (10..100).contains(&c) && c < 40));
    }

    #[test]
    fn signed_shrink_targets_zero_when_in_range() {
        let s = -100i64..100;
        let mut out = Vec::new();
        s.shrink(&-64, &mut out);
        assert!(out.contains(&0));
        assert!(out.iter().all(|&c| (-100..100).contains(&c)));
    }

    #[test]
    fn open_ended_range_generates_at_least_start() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = 2u64..;
        for _ in 0..100 {
            assert!(s.generate(&mut rng) >= 2);
        }
    }

    #[test]
    fn vec_shrink_respects_min_len() {
        let s = vec(0u64..10, 2..6);
        let mut out = Vec::new();
        s.shrink(&std::vec![1, 2, 3], &mut out);
        assert!(out.iter().all(|v| v.len() >= 2));
        assert!(!out.is_empty());
    }

    #[test]
    fn tuple_shrinks_componentwise() {
        let s = (0u64..100, 0u64..100);
        let mut out = Vec::new();
        s.shrink(&(50, 60), &mut out);
        assert!(out.iter().any(|&(a, b)| a < 50 && b == 60));
        assert!(out.iter().any(|&(a, b)| a == 50 && b < 60));
    }
}
