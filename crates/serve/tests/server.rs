//! End-to-end server tests over real sockets: concurrent budget
//! determinism, draining shutdown, and injected mid-response faults.

use std::sync::Mutex;
use tdf_serve::{Client, LoadConfig, RefusalReason, Response, Server, ServerConfig, SessionConfig};

/// Serialises the tests that install a process-global fault plan.
static PLAN: Mutex<()> = Mutex::new(());

fn server(workers: usize, budget: f64) -> Server {
    Server::start(ServerConfig {
        rows: 300,
        seed: 0xBEEF,
        workers,
        session: SessionConfig {
            epsilon_per_query: 1.0,
            budget,
            seed: 0xBEEF,
            min_query_set: 2,
            max_overlap: usize::MAX,
            max_rows: 0,
        },
        ..ServerConfig::default()
    })
    .expect("server starts")
}

const SQL: &str = "SELECT COUNT(*) FROM t WHERE height >= 150";

/// One hammering run: `clients` concurrent connections all spending the
/// budget of the same user. Returns (sorted answered values, refusals).
fn hammer(clients: usize, queries_each: usize) -> (Vec<u64>, usize) {
    let server = server(clients, 5.0);
    let addr = server.addr();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut answered = Vec::new();
                let mut refused = 0usize;
                for _ in 0..queries_each {
                    match client.query(7, SQL).expect("round trip") {
                        Response::Perturbed(v) => answered.push(v.to_bits()),
                        Response::Refused { reason, .. } => {
                            assert_eq!(reason, RefusalReason::Budget);
                            refused += 1;
                        }
                        other => panic!("unexpected {other:?}"),
                    }
                }
                let _ = client.bye(7);
                (answered, refused)
            })
        })
        .collect();
    let mut answered = Vec::new();
    let mut refused = 0usize;
    for h in handles {
        let (a, r) = h.join().expect("client thread");
        answered.extend(a);
        refused += r;
    }
    server.shutdown();
    answered.sort_unstable();
    (answered, refused)
}

#[test]
fn concurrent_budget_hammering_is_deterministic() {
    // 6 clients × 4 queries on one user with a 5ε budget: exactly 5
    // answers and 19 budget refusals, in any interleaving — admissions
    // are serialised under the user's session lock.
    let (answers_a, refused_a) = hammer(6, 4);
    assert_eq!(answers_a.len(), 5);
    assert_eq!(refused_a, 19);
    // And the *noise values themselves* are the same multiset on a rerun
    // with a different interleaving: the per-user stream draws once per
    // answered query, whoever's connection carried it.
    let (answers_b, refused_b) = hammer(6, 4);
    assert_eq!(answers_a, answers_b);
    assert_eq!(refused_a, refused_b);
}

#[test]
fn sessions_are_isolated_per_user() {
    let server = server(2, 2.0);
    let mut client = Client::connect(server.addr()).expect("connect");
    // User 100 exhausts their own budget...
    for _ in 0..2 {
        assert!(matches!(
            client.query(100, SQL).unwrap(),
            Response::Perturbed(_)
        ));
    }
    assert!(client.query(100, SQL).unwrap().is_refused());
    // ...which spends nothing of user 101's.
    assert!(matches!(
        client.query(101, SQL).unwrap(),
        Response::Perturbed(_)
    ));
    server.shutdown();
}

#[test]
fn bye_is_acknowledged_and_shutdown_does_not_hang_on_idle_connections() {
    let server = server(2, 10.0);
    let mut polite = Client::connect(server.addr()).expect("connect");
    assert!(matches!(
        polite.query(1, SQL).unwrap(),
        Response::Perturbed(_)
    ));
    assert_eq!(polite.bye(1).unwrap(), Response::Bye);
    // This client holds its connection open with no BYE; shutdown must
    // still complete (it severs the read half) within the test timeout.
    let mut rude = Client::connect(server.addr()).expect("connect");
    assert!(matches!(
        rude.query(2, SQL).unwrap(),
        Response::Perturbed(_)
    ));
    server.shutdown();
    // The rude client's next round trip fails cleanly — an error, not a
    // fabricated answer.
    assert!(rude.query(2, SQL).is_err());
}

#[test]
fn injected_partial_response_is_a_client_error_never_a_partial_answer() {
    let _guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    let server = server(2, 10.0);
    faultkit::set_plan(Some(
        faultkit::FaultPlan::parse("serve.partial_response=1").unwrap(),
    ));
    let mut victim = Client::connect(server.addr()).expect("connect");
    // The server computes the answer, writes half the frame and severs
    // the socket. The framing makes that an I/O error at the client —
    // under no interleaving can it surface as a (different) answer.
    let outcome = victim.query(3, SQL);
    assert!(outcome.is_err(), "got {outcome:?}");
    faultkit::set_plan(None);
    // The worker survives the severed connection and keeps serving.
    let mut next = Client::connect(server.addr()).expect("connect");
    assert!(matches!(
        next.query(4, SQL).unwrap(),
        Response::Perturbed(_)
    ));
    let _ = next.bye(4);
    server.shutdown();
}

#[test]
fn pir_fetch_round_trips_the_exact_record() {
    let server = server(2, 10.0);
    let mut client = Client::connect(server.addr()).expect("connect");
    for index in [0u64, 1, 63, 64, 4095] {
        match client.pir_fetch(9, index).expect("round trip") {
            Response::Record(bytes) => {
                assert_eq!(
                    bytes,
                    tdf_serve::pir_record(0xBEEF, 32, index as usize),
                    "index {index}"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    let _ = client.bye(9);
    server.shutdown();
}

#[test]
fn pir_fetch_out_of_range_is_a_typed_error() {
    let server = server(2, 10.0);
    let mut client = Client::connect(server.addr()).expect("connect");
    match client.pir_fetch(9, 4096).expect("round trip") {
        Response::Error(message) => {
            assert!(
                message.contains("out of range") && message.contains("4096"),
                "got {message:?}"
            );
        }
        other => panic!("unexpected {other:?}"),
    }
    // The connection survives the refused fetch.
    assert!(matches!(
        client.pir_fetch(9, 5).expect("round trip"),
        Response::Record(_)
    ));
    let _ = client.bye(9);
    server.shutdown();
}

#[test]
fn concurrent_pir_fetches_coalesce_into_fused_sweeps() {
    let before = obs::level();
    obs::set_level(1);
    obs::reset();
    let server = Server::start(ServerConfig {
        rows: 50,
        seed: 0xBEEF,
        workers: 16,
        session: SessionConfig {
            epsilon_per_query: 1.0,
            budget: 10.0,
            seed: 0xBEEF,
            min_query_set: 2,
            max_overlap: usize::MAX,
            max_rows: 0,
        },
        // A wide admission window so simultaneous fetches land in one
        // leader's batch even on a loaded CI machine.
        pir_batch_window_ms: 150,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(8));
    let handles: Vec<_> = (0..8u64)
        .map(|t| {
            let barrier = std::sync::Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                barrier.wait();
                let index = t * 300;
                let response = client.pir_fetch(t, index).expect("round trip");
                let _ = client.bye(t);
                (index, response)
            })
        })
        .collect();
    for h in handles {
        let (index, response) = h.join().expect("fetch thread");
        match response {
            Response::Record(bytes) => {
                assert_eq!(bytes, tdf_serve::pir_record(0xBEEF, 32, index as usize));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    server.shutdown();
    let snap = obs::snapshot();
    let widest = snap.gauge("serve.pir.batch_max");
    let answers = snap.counter("serve.pir.answers");
    obs::set_level(before);
    assert_eq!(answers, 8);
    assert!(
        widest >= 2,
        "8 simultaneous fetches through a 150 ms window must coalesce, \
         widest batch was {widest}"
    );
}

#[test]
fn dropped_batch_still_answers_every_fetch_correctly() {
    let _guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    let server = server(4, 10.0);
    let addr = server.addr();
    faultkit::set_plan(Some(
        faultkit::FaultPlan::parse("pir.batch_drop=1").unwrap(),
    ));
    // The first sweep is dropped by the fault plan; the batcher degrades
    // to per-query retries and every client still gets the right bytes.
    let handles: Vec<_> = (0..4u64)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let index = t * 1000;
                let response = client.pir_fetch(t, index).expect("round trip");
                let _ = client.bye(t);
                (index, response)
            })
        })
        .collect();
    for h in handles {
        let (index, response) = h.join().expect("fetch thread");
        match response {
            Response::Record(bytes) => {
                assert_eq!(
                    bytes,
                    tdf_serve::pir_record(0xBEEF, 32, index as usize),
                    "index {index}"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    faultkit::set_plan(None);
    server.shutdown();
}

#[test]
fn append_and_seal_grow_the_served_population() {
    let server = server(2, 50.0);
    let mut client = Client::connect(server.addr()).expect("connect");
    // 300 seed rows, sealed as segment 1 at startup.
    assert_eq!(client.seal(1).unwrap(), Response::Exact(1.0));
    // Two appends land in the tail; sealing freezes them as segment 2.
    assert_eq!(client.append(1, 40).unwrap(), Response::Exact(340.0));
    assert_eq!(client.append(1, 10).unwrap(), Response::Exact(350.0));
    assert_eq!(client.seal(1).unwrap(), Response::Exact(2.0));
    // The appended rows are immediately queryable.
    match client.query(1, "SELECT COUNT(*) FROM t").unwrap() {
        Response::Perturbed(_) => {}
        other => panic!("unexpected {other:?}"),
    }
    let _ = client.bye(1);
    server.shutdown();
}

#[test]
fn append_chunking_does_not_change_the_population() {
    // Same totals via different APPEND/SEAL interleavings: record content
    // is deterministic per global row index, and segmented evaluation is
    // bit-identical regardless of segmentation — so the same user's noise
    // stream yields bit-equal answers on both servers.
    let sql = "SELECT AVG(weight) FROM t WHERE height >= 150";
    let run = |chunks: &[u32]| {
        let server = server(2, 50.0);
        let mut client = Client::connect(server.addr()).expect("connect");
        for &c in chunks {
            match client.append(5, c).unwrap() {
                Response::Exact(_) => {}
                other => panic!("unexpected {other:?}"),
            }
            assert!(matches!(client.seal(5).unwrap(), Response::Exact(_)));
        }
        let answer = client.query(5, sql).unwrap();
        let _ = client.bye(5);
        server.shutdown();
        answer
    };
    let a = run(&[60]);
    let b = run(&[25, 25, 10]);
    assert_eq!(a, b, "population must not depend on append chunking");
    assert!(matches!(a, Response::Perturbed(_)), "{a:?}");
}

#[test]
fn oversized_append_is_a_typed_error() {
    let server = server(2, 10.0);
    let mut client = Client::connect(server.addr()).expect("connect");
    match client.append(1, u32::MAX).unwrap() {
        Response::Error(message) => {
            assert!(message.contains("cap"), "got {message:?}");
        }
        other => panic!("unexpected {other:?}"),
    }
    // The connection and the population survive the refused append.
    assert_eq!(client.append(1, 5).unwrap(), Response::Exact(305.0));
    let _ = client.bye(1);
    server.shutdown();
}

#[test]
fn loadgen_drives_real_sockets_and_reports_latencies() {
    let server = server(4, 4.0);
    let report = tdf_serve::loadgen::run(
        server.addr(),
        &LoadConfig {
            clients: 4,
            users: 50,
            requests_per_client: 40,
            zipf_s: 1.2,
            seed: 0x10AD,
        },
    )
    .expect("load run");
    server.shutdown();
    assert_eq!(report.requests, 160);
    assert_eq!(report.errors, 0);
    assert_eq!(report.answered + report.refused, 160);
    // The Zipf head concentrates requests on few users, so 4ε budgets
    // must produce refusals within 160 requests.
    assert!(report.refused > 0, "head users must hit their budgets");
    assert!(report.answered > 0);
    assert!(report.throughput_rps > 0.0);
    assert!(report.p50_ns > 0 && report.p50_ns <= report.p95_ns);
    assert!(report.p95_ns <= report.p99_ns);
}

#[test]
fn disguise_and_restore_round_trip_over_the_wire() {
    let server = server(2, 10.0);
    let mut client = Client::connect(server.addr()).expect("connect");
    // 300 ledger rows round-robined over 16 owners: owner 5 holds 19.
    assert_eq!(client.disguise(5).unwrap(), Response::Exact(19.0));
    // Double-disguise is a typed policy refusal, not a transport error.
    match client.disguise(5).unwrap() {
        Response::Refused { reason, message } => {
            assert_eq!(reason, RefusalReason::Policy);
            assert!(message.contains("already disguised"), "got {message:?}");
        }
        other => panic!("unexpected {other:?}"),
    }
    // Restore hands the same rows back, exactly once.
    assert_eq!(client.restore(5).unwrap(), Response::Exact(19.0));
    match client.restore(5).unwrap() {
        Response::Refused { reason, .. } => assert_eq!(reason, RefusalReason::Policy),
        other => panic!("unexpected {other:?}"),
    }
    // A user owning no ledger rows cannot unsubscribe from it.
    match client.disguise(999).unwrap() {
        Response::Refused { reason, .. } => assert_eq!(reason, RefusalReason::Policy),
        other => panic!("unexpected {other:?}"),
    }
    // The query path is untouched by ledger traffic on the same socket.
    assert!(matches!(
        client.query(5, SQL).unwrap(),
        Response::Perturbed(_)
    ));
    let _ = client.bye(5);
    server.shutdown();
}

#[test]
fn disguise_state_survives_a_server_restart_through_the_wal() {
    let wal = std::env::temp_dir().join(format!(
        "tdf_serve_restart_{}_{:x}.wal",
        std::process::id(),
        0xD15Cu32
    ));
    let _ = std::fs::remove_file(&wal);
    let cfg = || ServerConfig {
        rows: 300,
        seed: 0xBEEF,
        workers: 2,
        disguise_wal: Some(wal.clone()),
        session: SessionConfig {
            epsilon_per_query: 1.0,
            budget: 10.0,
            seed: 0xBEEF,
            min_query_set: 2,
            max_overlap: usize::MAX,
            max_rows: 0,
        },
        ..ServerConfig::default()
    };
    let server = Server::start(cfg()).expect("first server starts");
    let mut client = Client::connect(server.addr()).expect("connect");
    assert_eq!(client.disguise(3).unwrap(), Response::Exact(19.0));
    let _ = client.bye(3);
    server.shutdown();
    // A new process image on the same WAL path recovers the committed
    // disguise: user 3 is still unsubscribed, and their restore returns
    // exactly the journalled rows.
    let server = Server::start(cfg()).expect("second server starts");
    let mut client = Client::connect(server.addr()).expect("connect");
    match client.disguise(3).unwrap() {
        Response::Refused { reason, .. } => assert_eq!(reason, RefusalReason::Policy),
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(client.restore(3).unwrap(), Response::Exact(19.0));
    let _ = client.bye(3);
    server.shutdown();
    let _ = std::fs::remove_file(&wal);
}

#[test]
fn slow_clients_are_evicted_at_the_read_deadline() {
    let _guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    let before_level = obs::level();
    obs::set_level(1);
    obs::reset();
    let server = Server::start(ServerConfig {
        rows: 300,
        seed: 0xBEEF,
        workers: 2,
        read_deadline_ms: 60,
        session: SessionConfig {
            epsilon_per_query: 1.0,
            budget: 100.0,
            seed: 0xBEEF,
            min_query_set: 2,
            max_overlap: usize::MAX,
            max_rows: 0,
        },
        ..ServerConfig::default()
    })
    .expect("server starts");
    let mut idler = Client::connect(server.addr()).expect("connect");
    assert!(matches!(
        idler.query(1, SQL).unwrap(),
        Response::Perturbed(_)
    ));
    // Stop sending. The worker's read deadline fires and reclaims the
    // connection; the idler's next round trip fails cleanly.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    loop {
        std::thread::sleep(std::time::Duration::from_millis(100));
        if idler.query(1, SQL).is_err() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "slow client was never evicted"
        );
    }
    // An actively-sending client on the same server is unaffected.
    let mut active = Client::connect(server.addr()).expect("connect");
    assert!(matches!(
        active.query(2, SQL).unwrap(),
        Response::Perturbed(_)
    ));
    let _ = active.bye(2);
    server.shutdown();
    let snap = obs::snapshot();
    obs::set_level(before_level);
    assert!(
        snap.counter("serve.slow_evictions") >= 1,
        "eviction must be observable"
    );
}

#[test]
fn background_compaction_is_transparent_to_clients() {
    // Two identical servers, one with the background compactor on:
    // identical APPEND/SEAL/QUERY scripts must yield identical responses
    // — global row indices and query answers never shift while segments
    // merge underneath the write lock.
    let cfg = |compact_min: usize| ServerConfig {
        rows: 64,
        seed: 0x5EA1,
        workers: 2,
        session: SessionConfig {
            epsilon_per_query: 1.0,
            budget: 100.0,
            seed: 0x5EA1,
            min_query_set: 2,
            max_overlap: usize::MAX,
            max_rows: 0,
        },
        compact_min,
        ..ServerConfig::default()
    };
    let run = |compact_min: usize| -> Vec<u64> {
        let server = Server::start(cfg(compact_min)).expect("server starts");
        let mut client = Client::connect(server.addr()).expect("connect");
        let mut transcript = Vec::new();
        for round in 0..6u64 {
            // APPEND answers the new global row count — stable indices.
            match client.append(1, 32).expect("append") {
                Response::Exact(rows) => transcript.push(rows.to_bits()),
                other => panic!("unexpected append response {other:?}"),
            }
            // SEAL answers the segment count, which legitimately races
            // the compactor — issued but not compared.
            client.seal(1).expect("seal");
            // A fresh user per round: one deterministic noise draw each.
            match client.query(100 + round, SQL).expect("query") {
                Response::Perturbed(v) => transcript.push(v.to_bits()),
                other => panic!("unexpected query response {other:?}"),
            }
        }
        if compact_min > 0 {
            // 64 + 6×32 = 256 rows in seven under-floor segments: once
            // the compactor has caught up with the final seal, at most
            // one merged run plus one straggler can remain.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
            loop {
                match client.seal(1).expect("probe seal") {
                    Response::Exact(segments) if segments <= 2.0 => break,
                    Response::Exact(_) => {}
                    other => panic!("unexpected probe response {other:?}"),
                }
                assert!(
                    std::time::Instant::now() < deadline,
                    "compactor never caught up"
                );
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        }
        // Queries keep answering identically after compaction.
        match client.query(50, SQL).expect("post query") {
            Response::Perturbed(v) => transcript.push(v.to_bits()),
            other => panic!("unexpected post response {other:?}"),
        }
        let _ = client.bye(1);
        server.shutdown();
        transcript
    };
    assert_eq!(run(0), run(200), "compaction must be client-invisible");
}
