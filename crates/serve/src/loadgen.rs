//! Closed-loop synthetic workload generator.
//!
//! Models an interactive analyst population: `clients` concurrent
//! connections, each issuing `requests_per_client` queries back to back
//! (closed loop — the next request leaves only after the previous
//! response arrives), with the *acting user* of every request drawn from
//! a Zipfian popularity distribution over `users` simulated user ids.
//! Head users therefore burn through their privacy budgets and start
//! collecting refusals mid-run, exactly the regime the admission path is
//! built for; tail users stay under budget throughout.
//!
//! The report aggregates throughput and latency quantiles (p50/p95/p99)
//! over every request issued by every client, measured around the full
//! socket round trip.

use crate::client::Client;
use rngkit::rngs::StdRng;
use rngkit::{Rng, SeedableRng};
use std::io;
use std::net::SocketAddr;
use std::time::Instant;

/// Workload shape.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent closed-loop client connections.
    pub clients: usize,
    /// Simulated user-id population size.
    pub users: u64,
    /// Requests each client issues before disconnecting.
    pub requests_per_client: usize,
    /// Zipf exponent for user popularity (0 = uniform).
    pub zipf_s: f64,
    /// Workload seed (user draws and query-mix draws).
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            clients: 4,
            users: 1000,
            requests_per_client: 250,
            zipf_s: 1.1,
            seed: 0x10AD,
        }
    }
}

/// Aggregated outcome of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests issued (excluding BYEs).
    pub requests: u64,
    /// Responses carrying a (noisy) answer.
    pub answered: u64,
    /// Responses refused by the admission path.
    pub refused: u64,
    /// Transport or protocol errors.
    pub errors: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed_ns: u64,
    /// Requests per second over the whole run.
    pub throughput_rps: f64,
    /// Connections successfully opened (keep-alive: each client reuses
    /// one connection for its whole request train).
    pub connections: u64,
    /// Mean requests served per connection — the keep-alive ratio. With
    /// no mid-run evictions or transport errors this equals
    /// `requests_per_client`; a drop means connections died early.
    pub reqs_per_conn: f64,
    /// Median request latency.
    pub p50_ns: u64,
    /// 95th-percentile request latency.
    pub p95_ns: u64,
    /// 99th-percentile request latency.
    pub p99_ns: u64,
}

/// Zipfian sampler over ranks `1..=n` by inverse CDF lookup.
#[derive(Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks with exponent `s`.
    pub fn new(n: u64, s: f64) -> Zipf {
        assert!(n >= 1, "need at least one rank");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut total = 0.0;
        for rank in 1..=n {
            total += (rank as f64).powf(-s);
            cdf.push(total);
        }
        for w in &mut cdf {
            *w /= total;
        }
        Zipf { cdf }
    }

    /// Draws a rank in `1..=n` (rank 1 is the most popular).
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.gen();
        (self.cdf.partition_point(|&c| c < u) as u64 + 1).min(self.cdf.len() as u64)
    }
}

/// The query mix every simulated analyst draws from. All four templates
/// parse and admit (set sizes are large for the synthetic population),
/// so refusals in a run come from budgets — the signal under test.
const QUERY_MIX: [&str; 4] = [
    "SELECT COUNT(*) FROM t WHERE height >= 150",
    "SELECT AVG(weight) FROM t WHERE height >= 160",
    "SELECT AVG(blood_pressure) FROM t WHERE weight >= 60",
    "SELECT COUNT(*) FROM t WHERE weight >= 50",
];

/// Runs the closed-loop workload against a server and aggregates the
/// outcome. Client threads fail individually; their transport errors are
/// counted, not fatal.
pub fn run(addr: SocketAddr, cfg: &LoadConfig) -> io::Result<LoadReport> {
    run_with_latencies(addr, cfg).map(|(report, _)| report)
}

/// Like [`run`], but also returns every per-request latency (ascending),
/// for harnesses that want the full distribution rather than the three
/// summary quantiles.
pub fn run_with_latencies(
    addr: SocketAddr,
    cfg: &LoadConfig,
) -> io::Result<(LoadReport, Vec<u64>)> {
    let started = Instant::now();
    let handles: Vec<_> = (0..cfg.clients)
        .map(|c| {
            let cfg = cfg.clone();
            std::thread::Builder::new()
                .name(format!("tdf-loadgen-{c}"))
                .spawn(move || client_run(addr, &cfg, c as u64))
                .expect("spawn loadgen client")
        })
        .collect();
    let mut latencies = Vec::new();
    let mut answered = 0u64;
    let mut refused = 0u64;
    let mut errors = 0u64;
    let mut connections = 0u64;
    for h in handles {
        let outcome = h.join().expect("loadgen client panicked");
        latencies.extend(outcome.latencies_ns);
        answered += outcome.answered;
        refused += outcome.refused;
        errors += outcome.errors;
        connections += u64::from(outcome.connected);
    }
    let elapsed_ns = started.elapsed().as_nanos() as u64;
    latencies.sort_unstable();
    let requests = latencies.len() as u64 + errors;
    let report = LoadReport {
        requests,
        answered,
        refused,
        errors,
        elapsed_ns,
        throughput_rps: requests as f64 / (elapsed_ns as f64 / 1e9),
        connections,
        reqs_per_conn: if connections == 0 {
            0.0
        } else {
            latencies.len() as f64 / connections as f64
        },
        p50_ns: percentile(&latencies, 0.50),
        p95_ns: percentile(&latencies, 0.95),
        p99_ns: percentile(&latencies, 0.99),
    };
    Ok((report, latencies))
}

struct ClientOutcome {
    latencies_ns: Vec<u64>,
    answered: u64,
    refused: u64,
    errors: u64,
    connected: bool,
}

fn client_run(addr: SocketAddr, cfg: &LoadConfig, client_id: u64) -> ClientOutcome {
    let mut outcome = ClientOutcome {
        latencies_ns: Vec::with_capacity(cfg.requests_per_client),
        answered: 0,
        refused: 0,
        errors: 0,
        connected: false,
    };
    let mut rng = StdRng::seed_from_u64({
        let mut state = cfg.seed ^ client_id;
        rngkit::splitmix64(&mut state)
    });
    let zipf = Zipf::new(cfg.users, cfg.zipf_s);
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(_) => {
            outcome.errors += cfg.requests_per_client as u64;
            return outcome;
        }
    };
    outcome.connected = true;
    for _ in 0..cfg.requests_per_client {
        let user = zipf.sample(&mut rng);
        let sql = QUERY_MIX[rng.gen_range(0..QUERY_MIX.len())];
        let sent = Instant::now();
        match client.query(user, sql) {
            Ok(response) => {
                outcome.latencies_ns.push(sent.elapsed().as_nanos() as u64);
                if response.is_refused() {
                    outcome.refused += 1;
                } else {
                    outcome.answered += 1;
                }
            }
            Err(_) => {
                outcome.errors += 1;
                break;
            }
        }
    }
    let _ = client.bye(client_id);
    outcome
}

/// Nearest-rank percentile of an ascending-sorted slice (0 when empty).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() as f64 * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_head_heavy_and_in_range() {
        let zipf = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(0x21F);
        let mut counts = [0u64; 100];
        for _ in 0..20_000 {
            let rank = zipf.sample(&mut rng);
            assert!((1..=100).contains(&rank));
            counts[rank as usize - 1] += 1;
        }
        assert!(counts[0] > counts[9], "rank 1 beats rank 10");
        assert!(counts[0] > 10 * counts[50].max(1), "heavy head");
    }

    #[test]
    fn zipf_zero_exponent_is_uniform_ish() {
        let zipf = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u64; 10];
        for _ in 0..10_000 {
            counts[zipf.sample(&mut rng) as usize - 1] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max - min < 400, "{counts:?}");
    }

    #[test]
    fn percentiles_hit_the_expected_ranks() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 0.50), 50);
        assert_eq!(percentile(&sorted, 0.95), 95);
        assert_eq!(percentile(&sorted, 0.99), 99);
        assert_eq!(percentile(&[], 0.5), 0);
    }
}
