//! Batch admission for PIR fetches: queued requests from *different*
//! connections (and users) drain through one fused database sweep.
//!
//! The first request to arrive while no sweep is running becomes the
//! **leader**: it waits out a short admission window (`window_ms`) for
//! followers to pile on — or until `max_batch` requests are pending —
//! then drains the whole queue through [`tdf_pir::batch::retrieve_batch`]
//! and distributes the answers. Requests arriving *during* a sweep
//! enqueue and are drained by the same leader before it retires, so no
//! request can be stranded waiting for a leader that already left.
//!
//! The batcher owns the query RNG: masks are drawn under its lock in
//! batch order, so a server's answer stream is a deterministic function
//! of (seed, arrival order) — the same property the session layer gives
//! SQL queries.

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};
use tdf_pir::store::Database;

/// One waiting request's result slot.
struct Slot {
    result: Mutex<Option<Vec<u8>>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Self {
        Self {
            result: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn fill(&self, record: Vec<u8>) {
        let mut r = self
            .result
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *r = Some(record);
        self.ready.notify_all();
    }

    fn wait(&self) -> Vec<u8> {
        let mut r = self
            .result
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(record) = r.take() {
                return record;
            }
            r = self
                .ready
                .wait(r)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

struct Pending {
    index: usize,
    slot: std::sync::Arc<Slot>,
}

struct State {
    pending: Vec<Pending>,
    /// True while a leader is sweeping; followers enqueue and wait.
    sweeping: bool,
}

/// Coalesces concurrent PIR fetches into fused batch sweeps.
pub struct PirBatcher {
    state: Mutex<State>,
    arrivals: Condvar,
    window: Duration,
    max_batch: usize,
    rng: Mutex<rngkit::rngs::StdRng>,
}

impl PirBatcher {
    /// Creates a batcher drawing query masks from `seed`.
    pub fn new(seed: u64, window_ms: u64, max_batch: usize) -> Self {
        use rngkit::SeedableRng;
        Self {
            state: Mutex::new(State {
                pending: Vec::new(),
                sweeping: false,
            }),
            arrivals: Condvar::new(),
            window: Duration::from_millis(window_ms),
            max_batch: max_batch.max(1),
            rng: Mutex::new(rngkit::rngs::StdRng::seed_from_u64(seed ^ 0x9172)),
        }
    }

    /// Fetches record `index`, batching with whatever else is pending.
    /// Blocks the calling worker until its answer is ready. `index` must
    /// already be range-checked against `db`.
    pub fn fetch(&self, db: &Database, index: usize) -> Vec<u8> {
        let slot = std::sync::Arc::new(Slot::new());
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state.pending.push(Pending {
            index,
            slot: std::sync::Arc::clone(&slot),
        });
        self.arrivals.notify_all();
        if state.sweeping {
            // A leader is active and will drain us before retiring.
            drop(state);
            return slot.wait();
        }
        state.sweeping = true;
        // Leader: hold the admission window open so concurrent fetches
        // coalesce, unless the batch is already full.
        let deadline = Instant::now() + self.window;
        while state.pending.len() < self.max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, timeout) = self
                .arrivals
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state = guard;
            if timeout.timed_out() {
                break;
            }
        }
        // Drain until the queue is empty — including requests that
        // arrived while we were sweeping — then retire the leader role.
        loop {
            let batch = std::mem::take(&mut state.pending);
            if batch.is_empty() {
                state.sweeping = false;
                break;
            }
            drop(state);
            self.sweep(db, &batch);
            state = self
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        drop(state);
        // Our own slot was in the first batch this leader swept.
        slot.wait()
    }

    /// Answers one drained batch with a fused sweep (at most `max_batch`
    /// lanes per sweep, so a burst cannot build an unbounded mask set).
    fn sweep(&self, db: &Database, batch: &[Pending]) {
        for chunk in batch.chunks(self.max_batch) {
            obs::count("serve.pir.batches", 1);
            obs::gauge_max("serve.pir.batch_max", chunk.len() as u64);
            let indices: Vec<usize> = chunk.iter().map(|p| p.index).collect();
            let outcome = {
                let mut rng = self
                    .rng
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                tdf_pir::batch::retrieve_batch(&mut *rng, db, &indices)
            };
            if outcome.degraded {
                obs::count("serve.pir.degraded_batches", 1);
            }
            for (p, record) in chunk.iter().zip(outcome.records) {
                p.slot.fill(record);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn db(n: usize) -> Database {
        Database::from_fn(n, 32, |i, rec| {
            for (j, b) in rec.iter_mut().enumerate() {
                *b = (i * 3 + j) as u8;
            }
        })
    }

    #[test]
    fn single_fetch_returns_the_record() {
        let db = db(500);
        let batcher = PirBatcher::new(1, 0, 64);
        for i in [0usize, 7, 499] {
            assert_eq!(batcher.fetch(&db, i), db.record(i).to_vec());
        }
    }

    #[test]
    fn concurrent_fetches_coalesce_and_all_answer_correctly() {
        let db = Arc::new(db(2000));
        // A wide window so every thread lands in the leader's batch.
        let batcher = Arc::new(PirBatcher::new(2, 150, 64));
        let barrier = Arc::new(std::sync::Barrier::new(16));
        let before = obs::level();
        obs::set_level(1);
        obs::reset();
        let handles: Vec<_> = (0..16)
            .map(|t| {
                let db = Arc::clone(&db);
                let batcher = Arc::clone(&batcher);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let index = t * 117;
                    barrier.wait();
                    (index, batcher.fetch(&db, index))
                })
            })
            .collect();
        for h in handles {
            let (index, record) = h.join().expect("fetch thread");
            assert_eq!(record, db.record(index).to_vec(), "index {index}");
        }
        let snap = obs::snapshot();
        let batches = snap.counter("serve.pir.batches");
        let widest = snap.gauge("serve.pir.batch_max");
        obs::set_level(before);
        assert!(batches >= 1, "at least one sweep ran");
        assert!(
            widest >= 2,
            "16 simultaneous fetches through a 150 ms window must coalesce, widest batch was {widest}"
        );
    }

    #[test]
    fn max_batch_bounds_each_sweep() {
        let db = Arc::new(db(300));
        let batcher = Arc::new(PirBatcher::new(3, 100, 4));
        let barrier = Arc::new(std::sync::Barrier::new(12));
        let handles: Vec<_> = (0..12)
            .map(|t| {
                let db = Arc::clone(&db);
                let batcher = Arc::clone(&batcher);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    (t, batcher.fetch(&db, t * 20))
                })
            })
            .collect();
        for h in handles {
            let (t, record) = h.join().expect("fetch thread");
            assert_eq!(record, db.record(t * 20).to_vec());
        }
    }
}
