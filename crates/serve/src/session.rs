//! Per-user session state and the admission path.
//!
//! Every user id (claimed, not authenticated — the server models the
//! paper's honest-but-curious statistical office, not an auth system)
//! owns one [`UserSession`]: a differential-privacy budget and a history
//! of answered query sets. The admission path applies, in order,
//!
//! 1. a static size floor (query sets below `min_query_set` records),
//! 2. Dobkin–Jones–Lipton overlap restriction against the user's own
//!    answered history (the tracker/differencing defence),
//! 3. the ε-budget of [`DpPolicy`] — which also supplies the Laplace
//!    noise for answered queries.
//!
//! All three refuse through the same [`Response::Refused`] shape that
//! `querydb` kernels use in-process, with a wire [`RefusalReason`] code.
//!
//! **Determinism.** A session's outcomes depend only on the sequence of
//! *its own* admitted queries: the DP noise stream is seeded per user
//! (`splitmix64(master_seed ^ user_id)`), draws one value per *answered*
//! query, and the server serialises each user's admissions under the
//! session lock. N clients hammering one user therefore produce exactly
//! the same multiset of answers and refusals in any interleaving.

use crate::protocol::{RefusalReason, Response};
use tdf_microdata::{Dataset, Error, SegmentedDataset};
use tdf_querydb::dp::DpPolicy;
use tdf_querydb::engine::{
    evaluate_segmented_with_limits, evaluate_with_limits, Evaluation, QueryLimits,
};
use tdf_querydb::parser::parse;
use tdf_querydb::{Answer, Query};

/// Admission and budget parameters shared by every session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// ε spent per answered query.
    pub epsilon_per_query: f64,
    /// Total ε each user may spend before refusal.
    pub budget: f64,
    /// Master seed; each user's noise stream is derived from it.
    pub seed: u64,
    /// Minimum admissible query-set size.
    pub min_query_set: usize,
    /// Maximum record overlap with any of the user's answered queries.
    pub max_overlap: usize,
    /// Per-query row-scan budget (0 = unlimited); exceeding it refuses
    /// with the deadline reason, never answers from a partial scan.
    pub max_rows: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            epsilon_per_query: 0.5,
            budget: 20.0,
            seed: 0x7DF,
            min_query_set: 2,
            max_overlap: usize::MAX,
            max_rows: 0,
        }
    }
}

/// Declared attribute ranges for the synthetic patient population — what
/// lets SUM/AVG queries through the DP sensitivity model.
fn patient_dp_policy(cfg: &SessionConfig, user: u64) -> DpPolicy {
    let mut state = cfg.seed ^ user;
    let user_seed = rngkit::splitmix64(&mut state);
    DpPolicy::new(cfg.epsilon_per_query, cfg.budget, user_seed)
        .with_range("height", 140.0, 210.0)
        .with_range("weight", 40.0, 160.0)
        .with_range("blood_pressure", 90.0, 220.0)
}

/// One user's server-side state.
#[derive(Debug)]
pub struct UserSession {
    user: u64,
    dp: DpPolicy,
    min_query_set: usize,
    max_overlap: usize,
    max_rows: u64,
    /// Query sets of this user's *answered* queries, for overlap checks.
    answered: Vec<std::collections::BTreeSet<usize>>,
}

impl UserSession {
    /// Creates the session for `user` under `cfg`.
    pub fn new(cfg: &SessionConfig, user: u64) -> Self {
        Self {
            user,
            dp: patient_dp_policy(cfg, user),
            min_query_set: cfg.min_query_set,
            max_overlap: cfg.max_overlap,
            max_rows: cfg.max_rows,
            answered: Vec::new(),
        }
    }

    /// The session's user id.
    pub fn user(&self) -> u64 {
        self.user
    }

    /// Remaining ε budget.
    pub fn remaining_budget(&self) -> f64 {
        self.dp.remaining()
    }

    /// Runs one query through the full admission path against an
    /// in-memory dataset.
    pub fn answer(&mut self, data: &Dataset, sql: &str) -> Response {
        self.answer_with(sql, |query, limits| {
            evaluate_with_limits(data, query, limits)
        })
    }

    /// Runs one query through the full admission path against a
    /// segmented (possibly out-of-core) dataset. The admission outcome
    /// and the noise stream are identical to [`UserSession::answer`] on
    /// the materialized table: segmented evaluation is bit-exact.
    pub fn answer_segmented(&mut self, data: &SegmentedDataset, sql: &str) -> Response {
        self.answer_with(sql, |query, limits| {
            evaluate_segmented_with_limits(data, query, limits)
        })
    }

    /// The admission path over any exact evaluator: parse, evaluate
    /// under the session's limits, size floor, overlap (tracker)
    /// restriction, then the ε-budgeted DP answer.
    fn answer_with<F>(&mut self, sql: &str, eval_fn: F) -> Response
    where
        F: FnOnce(&Query, &QueryLimits) -> Result<Evaluation, Error>,
    {
        let query = match parse(sql) {
            Ok(q) => q,
            Err(e) => return Response::Error(format!("parse error: {e}")),
        };
        let limits = if self.max_rows == 0 {
            QueryLimits::unlimited()
        } else {
            QueryLimits::with_max_rows(self.max_rows)
        };
        let eval = match eval_fn(&query, &limits.tightened(QueryLimits::ambient())) {
            Ok(eval) => eval,
            Err(Error::ResourceExhausted(_)) => {
                return refuse(
                    RefusalReason::Deadline,
                    "query exceeded its evaluation deadline",
                )
            }
            Err(e) => return Response::Error(format!("evaluation error: {e}")),
        };
        if eval.query_set.len() < self.min_query_set {
            return refuse(RefusalReason::Policy, "query set below minimum size");
        }
        let current: std::collections::BTreeSet<usize> = eval.query_set.iter().copied().collect();
        let differencing = self
            .answered
            .iter()
            .any(|prev| prev.intersection(&current).count() > self.max_overlap);
        if differencing {
            return refuse(
                RefusalReason::Tracker,
                "tracker pattern detected: query set overlaps an answered query",
            );
        }
        match self.dp.apply_eval(&query, &eval) {
            Answer::Refused(msg) => {
                let reason = if msg.contains("budget") {
                    RefusalReason::Budget
                } else {
                    RefusalReason::Other
                };
                refuse(reason, msg)
            }
            Answer::Perturbed(v) => {
                self.answered.push(current);
                Response::Perturbed(v)
            }
            // DpPolicy only produces Perturbed or Refused; keep the match
            // exhaustive so a policy change here is a compile error.
            Answer::Exact(v) => {
                self.answered.push(current);
                Response::Exact(v)
            }
            Answer::Interval(lo, hi) => {
                self.answered.push(current);
                Response::Interval(lo, hi)
            }
        }
    }
}

fn refuse(reason: RefusalReason, message: &str) -> Response {
    Response::Refused {
        reason,
        message: message.to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdf_microdata::synth::{patients, PatientConfig};

    fn data() -> Dataset {
        patients(&PatientConfig {
            n: 200,
            seed: 0xD0C7,
            ..Default::default()
        })
    }

    fn cfg() -> SessionConfig {
        SessionConfig {
            epsilon_per_query: 1.0,
            budget: 3.0,
            seed: 0x5EED,
            min_query_set: 2,
            max_overlap: 10_000,
            max_rows: 0,
        }
    }

    #[test]
    fn budget_exhaustion_refuses_with_the_budget_reason() {
        let d = data();
        let mut s = UserSession::new(&cfg(), 1);
        for _ in 0..3 {
            let r = s.answer(&d, "SELECT COUNT(*) FROM t WHERE height >= 150");
            assert!(matches!(r, Response::Perturbed(_)), "{r:?}");
        }
        match s.answer(&d, "SELECT COUNT(*) FROM t WHERE height >= 150") {
            Response::Refused { reason, .. } => assert_eq!(reason, RefusalReason::Budget),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.remaining_budget(), 0.0);
    }

    #[test]
    fn overlapping_queries_trip_the_tracker_defence() {
        let d = data();
        let mut c = cfg();
        c.max_overlap = 10;
        let mut s = UserSession::new(&c, 2);
        let first = s.answer(&d, "SELECT AVG(weight) FROM t WHERE height >= 150");
        assert!(matches!(first, Response::Perturbed(_)), "{first:?}");
        // Nearly the same query set: overlap far above 10.
        match s.answer(&d, "SELECT AVG(weight) FROM t WHERE height >= 151") {
            Response::Refused { reason, .. } => assert_eq!(reason, RefusalReason::Tracker),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn tiny_query_sets_are_refused_by_policy() {
        let d = data();
        let mut s = UserSession::new(&cfg(), 3);
        match s.answer(&d, "SELECT COUNT(*) FROM t WHERE height >= 10000") {
            Response::Refused { reason, .. } => assert_eq!(reason, RefusalReason::Policy),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_errors_are_errors_not_refusals() {
        let d = data();
        let mut s = UserSession::new(&cfg(), 4);
        assert!(matches!(s.answer(&d, "SELEKT nope"), Response::Error(_)));
    }

    #[test]
    fn segmented_answers_match_monolithic_bit_for_bit() {
        let d = data();
        let seg = SegmentedDataset::from_dataset(&d, 64);
        seg.spill_all();
        for sql in [
            "SELECT COUNT(*) FROM t WHERE height >= 150",
            "SELECT AVG(weight) FROM t WHERE height < 180",
            "SELECT SUM(blood_pressure) FROM t WHERE weight >= 60",
        ] {
            let a = UserSession::new(&cfg(), 9).answer(&d, sql);
            let b = UserSession::new(&cfg(), 9).answer_segmented(&seg, sql);
            assert_eq!(a, b, "{sql}: out-of-core admission must not drift");
        }
    }

    #[test]
    fn noise_streams_are_deterministic_per_user() {
        let d = data();
        let sql = "SELECT COUNT(*) FROM t WHERE height >= 150";
        let a = UserSession::new(&cfg(), 9).answer(&d, sql);
        let b = UserSession::new(&cfg(), 9).answer(&d, sql);
        assert_eq!(a, b, "same user, same seed, same stream");
        let c = UserSession::new(&cfg(), 10).answer(&d, sql);
        assert_ne!(a, c, "different users draw different noise");
    }
}
