//! The TCP server: accept loop, connection queue, worker pool, draining
//! shutdown, and the `tdf-obs` metrics surface.
//!
//! Architecture: one accept thread pushes connections onto a queue
//! (depth is exported as `serve.queue_depth`); a fixed pool of
//! connection workers — sized by [`par::measured_cores`] unless
//! overridden — pops connections and serves each one to completion.
//! Sessions are keyed by the request's claimed user id, *not* by
//! connection, so many concurrent connections can act for one user; each
//! user's admissions are serialised under that user's session lock,
//! which is what makes refusal sequences deterministic under any client
//! interleaving (see `session.rs`). The session map itself is sharded
//! by `splitmix64(user)` so unrelated users never contend on lookup.
//!
//! **Ingest.** The served population is a [`SegmentedDataset`]: `APPEND`
//! grows the mutable tail with records deterministic per global row
//! index, `SEAL` freezes the tail into a sealed segment that may spill
//! to disk under the `TDF_SEGCACHE` budget, and queries stream the
//! segments under a read lock (`evaluate_segmented`, bit-identical to
//! the monolithic evaluator).
//!
//! **Shutdown** flips the draining flag, wakes the accept loop with a
//! self-connection, severs the *read* half of every active connection
//! (unblocking workers parked in a read without cutting a response in
//! flight — the write half stays intact), and joins every thread.
//! Requests already being processed complete and their responses are
//! written whole; requests arriving after the flag flips are refused
//! with [`RefusalReason::Draining`].
//!
//! Fault site: `serve.partial_response` severs the connection after
//! writing half a response frame — the injection the shutdown tests use
//! to prove clients can never mistake a cut write for an answer.
//!
//! **PIR.** The server also holds a seed-deterministic PIR record store;
//! `PIR_FETCH` requests from any number of connections funnel through a
//! [`crate::batch::PirBatcher`], which coalesces whatever is pending
//! into one fused multi-lane sweep per admission window (see
//! `tdf_pir::batch`).

use crate::batch::PirBatcher;
use crate::protocol::{
    encode_response, read_request, write_frame, RefusalReason, Request, Response,
};
use crate::session::{SessionConfig, UserSession};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};
use tdf_microdata::synth::{patients, PatientConfig};
use tdf_microdata::{SegmentedDataset, Value};
use tdf_pir::store::Database;

/// Power-of-two shard count for the per-user session map. One global
/// map behind one mutex serialises *session lookup* across every
/// connection worker even though distinct users never contend on state;
/// splitmix64-sharding spreads lookups so only same-shard users queue.
const USER_SHARDS: usize = 16;

/// Hard cap on one APPEND request, so a hostile count cannot make the
/// server synthesise rows unboundedly while holding the write lock.
const MAX_APPEND: u32 = 1 << 20;

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Rows in the synthetic patient population the server exposes.
    pub rows: usize,
    /// Master seed (dataset synthesis and per-user noise streams).
    pub seed: u64,
    /// Connection workers; 0 sizes the pool by the measured core count.
    pub workers: usize,
    /// Per-user admission and budget parameters (its `seed` is
    /// overwritten by the server's master seed).
    pub session: SessionConfig,
    /// Records in the PIR store (seed-deterministic content).
    pub pir_records: usize,
    /// Bytes per PIR record.
    pub pir_record_size: usize,
    /// Batch-admission window in milliseconds: how long the first
    /// pending PIR fetch waits for others to coalesce before sweeping.
    pub pir_batch_window_ms: u64,
    /// Maximum lanes per fused sweep.
    pub pir_batch_max: usize,
    /// Row floor for background segment compaction: after each SEAL, a
    /// compactor thread merges runs of adjacent sealed segments smaller
    /// than this ([`SegmentedDataset::compact`]). `0` disables the
    /// thread entirely. Defaults from `TDF_COMPACT_MIN` (unset = 0).
    pub compact_min: usize,
    /// Owners in the disguise ledger (rows round-robin across user ids
    /// `1..=disguise_users`); DISGUISE/RESTORE act on this ledger.
    pub disguise_users: u64,
    /// Journal path for the disguise engine. `None` uses a per-instance
    /// temp file removed on shutdown; point it at a real path to make
    /// disguises survive a server restart.
    pub disguise_wal: Option<std::path::PathBuf>,
    /// Per-connection read deadline in milliseconds: a client that keeps
    /// a worker parked in a read longer than this is evicted (counted as
    /// `serve.slow_evictions`). `0` disables the deadline. Defaults from
    /// `TDF_READ_DEADLINE_MS` (unset = 30 000).
    pub read_deadline_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            rows: 1000,
            seed: 0x7DF,
            workers: 0,
            session: SessionConfig::default(),
            pir_records: 4096,
            pir_record_size: 32,
            pir_batch_window_ms: 1,
            pir_batch_max: 64,
            compact_min: std::env::var("TDF_COMPACT_MIN")
                .ok()
                .and_then(|s| s.trim().parse::<usize>().ok())
                .unwrap_or(0),
            disguise_users: 16,
            disguise_wal: None,
            read_deadline_ms: std::env::var("TDF_READ_DEADLINE_MS")
                .ok()
                .and_then(|s| s.trim().parse::<u64>().ok())
                .unwrap_or(30_000),
        }
    }
}

/// The content of PIR record `i` under `seed` — the reference the store
/// is built from, exposed so clients and tests can verify fetched bytes
/// without downloading the database.
pub fn pir_record(seed: u64, record_size: usize, i: usize) -> Vec<u8> {
    let mut out = vec![0u8; record_size];
    fill_pir_record(seed, i, &mut out);
    out
}

fn fill_pir_record(seed: u64, i: usize, rec: &mut [u8]) {
    let mut state = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for chunk in rec.chunks_mut(8) {
        let word = rngkit::splitmix64(&mut state).to_le_bytes();
        chunk.copy_from_slice(&word[..chunk.len()]);
    }
}

struct Shared {
    /// The served population: sealed (spillable) segments + mutable
    /// tail. Queries stream under the read lock; APPEND/SEAL take the
    /// write lock.
    data: RwLock<SegmentedDataset>,
    /// Master seed — per-row append synthesis derives from it.
    seed: u64,
    pir: Database,
    batcher: PirBatcher,
    session_cfg: SessionConfig,
    /// Session map, sharded by `splitmix64(user)`. Each user's budget
    /// stays single-writer under its own session mutex; the shards only
    /// narrow the lookup critical section.
    users: [Mutex<HashMap<u64, Arc<Mutex<UserSession>>>>; USER_SHARDS],
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    /// Background-compaction row floor (0 = no compactor thread) and the
    /// seal counter the compactor sleeps on.
    compact_min: usize,
    compact_signal: (Mutex<u64>, Condvar),
    draining: AtomicBool,
    /// Read-half clones of every connection currently being served, so
    /// shutdown can unblock workers parked in a blocking read.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
    /// The disguise ledger: per-user reversible disguise/restore
    /// transactions, WAL-backed. Single-writer by design — disguises are
    /// rare, whole-user mutations; queries never touch this lock.
    disguise: Mutex<tdf_disguise::DisguiseEngine>,
    /// Set when the journal lives in a per-instance temp file the server
    /// owns (and removes on shutdown).
    disguise_wal_owned: Option<std::path::PathBuf>,
    /// Per-connection read deadline (0 = none).
    read_deadline_ms: u64,
}

impl Shared {
    fn session_for(&self, user: u64) -> Arc<Mutex<UserSession>> {
        let mut state = user;
        let shard = (rngkit::splitmix64(&mut state) as usize) & (USER_SHARDS - 1);
        let mut users = self.users[shard]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Arc::clone(users.entry(user).or_insert_with(|| {
            obs::count("serve.sessions", 1);
            Arc::new(Mutex::new(UserSession::new(&self.session_cfg, user)))
        }))
    }
}

/// The synthetic patient record at global row `index` under `seed` —
/// deterministic in `(seed, index)` alone, so the served population is
/// independent of how APPENDs are chunked or interleaved with SEALs.
fn synth_row(seed: u64, index: u64) -> Vec<Value> {
    let mut state = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let row_seed = rngkit::splitmix64(&mut state);
    patients(&PatientConfig {
        n: 1,
        seed: row_seed,
        ..Default::default()
    })
    .row(0)
}

/// A running server handle. Always shut down explicitly; dropping the
/// handle leaks the worker threads for the process lifetime.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    compactor: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds an ephemeral local port, synthesises the dataset and starts
    /// the accept loop plus the connection-worker pool.
    pub fn start(cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let mut session_cfg = cfg.session;
        session_cfg.seed = cfg.seed;
        // The initial population is sealed as one segment, so the served
        // table is segmented from the first query — and evaluation stays
        // bit-identical to the old monolithic path (the golden transcript
        // pins this).
        let initial = patients(&PatientConfig {
            n: cfg.rows,
            seed: cfg.seed,
            ..Default::default()
        });
        // The disguise ledger: the same synthetic population, owner-
        // labelled, with a WAL so disguises are atomic across crashes.
        // A configured journal path makes them survive restarts; the
        // default is a per-instance temp file removed on shutdown.
        let (wal_path, wal_owned) = match &cfg.disguise_wal {
            Some(p) => (p.clone(), None),
            None => {
                static WAL_SEQ: AtomicU64 = AtomicU64::new(0);
                let p = std::env::temp_dir().join(format!(
                    "tdf_serve_disguise_{}_{}.wal",
                    std::process::id(),
                    WAL_SEQ.fetch_add(1, Ordering::Relaxed),
                ));
                let _ = std::fs::remove_file(&p);
                (p.clone(), Some(p))
            }
        };
        let ledger = tdf_disguise::owned_patients(
            &PatientConfig {
                n: cfg.rows,
                seed: cfg.seed,
                ..Default::default()
            },
            cfg.disguise_users.max(1),
        );
        let (disguise, _recovery) = tdf_disguise::DisguiseEngine::open(
            &wal_path,
            ledger,
            tdf_disguise::DisguisePolicy::patients_default(),
            cfg.seed,
        )
        .map_err(|e| io::Error::other(format!("disguise journal {}: {e}", wal_path.display())))?;
        let shared = Arc::new(Shared {
            data: RwLock::new(SegmentedDataset::from_dataset(&initial, cfg.rows.max(1))),
            seed: cfg.seed,
            pir: Database::from_fn(cfg.pir_records, cfg.pir_record_size, |i, rec| {
                fill_pir_record(cfg.seed, i, rec)
            }),
            batcher: PirBatcher::new(cfg.seed, cfg.pir_batch_window_ms, cfg.pir_batch_max),
            session_cfg,
            users: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            compact_min: cfg.compact_min,
            compact_signal: (Mutex::new(0), Condvar::new()),
            draining: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            disguise: Mutex::new(disguise),
            disguise_wal_owned: wal_owned,
            read_deadline_ms: cfg.read_deadline_ms,
        });
        let worker_count = if cfg.workers == 0 {
            par::measured_cores().max(2)
        } else {
            cfg.workers.max(1)
        };
        let workers = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tdf-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn tdf-serve worker")
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("tdf-serve-accept".to_owned())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn tdf-serve accept loop")
        };
        let compactor = (cfg.compact_min > 0).then(|| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("tdf-serve-compactor".to_owned())
                .spawn(move || compactor_loop(&shared))
                .expect("spawn tdf-serve compactor")
        });
        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
            workers,
            compactor,
        })
    }

    /// The bound address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: refuse new work, drain in-flight requests,
    /// join every thread.
    pub fn shutdown(mut self) {
        self.shared.draining.store(true, Ordering::Release);
        // Wake the accept loop out of its blocking accept.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.shared.queue_cv.notify_all();
        // Unblock workers parked in a read. Only the read half is severed:
        // a response currently being written still goes out whole.
        {
            let conns = self
                .shared
                .conns
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for stream in conns.values() {
                let _ = stream.shutdown(std::net::Shutdown::Read);
            }
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // The compactor re-checks the draining flag whenever it wakes.
        if let Some(compactor) = self.compactor.take() {
            self.shared.compact_signal.1.notify_all();
            let _ = compactor.join();
        }
        // A per-instance temp journal dies with the server; a configured
        // path is durable state and stays.
        if let Some(path) = &self.shared.disguise_wal_owned {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Background segment compaction: sleeps on the seal counter, and after
/// each burst of SEALs merges runs of adjacent under-floor sealed
/// segments under the data write lock. Clients never observe a row move
/// — compaction preserves global row order and indices — only the
/// segment count dropping. Failures (including the injected
/// `segment.compact` crash) leave the dataset exactly as it was.
fn compactor_loop(shared: &Shared) {
    let (pending, cv) = &shared.compact_signal;
    let mut seen = 0u64;
    loop {
        {
            let mut sealed = pending
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            while *sealed == seen && !shared.draining.load(Ordering::Acquire) {
                sealed = cv
                    .wait(sealed)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            if shared.draining.load(Ordering::Acquire) {
                return;
            }
            seen = *sealed;
        }
        let mut data = shared
            .data
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match data.compact(shared.compact_min) {
            Ok(report) if report.merged_any() => {
                obs::count("serve.compactions", report.runs.len() as u64);
            }
            Ok(_) => {}
            Err(_) => obs::count("serve.compact_failed", 1),
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            return;
        };
        if shared.draining.load(Ordering::Acquire) {
            // The wake-up connection (or a late client): nothing is
            // admitted past this point.
            return;
        }
        let mut queue = shared
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        queue.push_back(stream);
        obs::gauge_max("serve.queue_depth", queue.len() as u64);
        drop(queue);
        shared.queue_cv.notify_one();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if let Some(stream) = queue.pop_front() {
                    break stream;
                }
                if shared.draining.load(Ordering::Acquire) {
                    return;
                }
                queue = shared
                    .queue_cv
                    .wait(queue)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        obs::count("serve.connections", 1);
        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            if shared.draining.load(Ordering::Acquire) {
                // This connection was claimed after draining began; give
                // its (refusal) reads a deadline so a silent client can
                // never stall the shutdown join.
                let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
            } else if shared.read_deadline_ms > 0 {
                // Slow-client guard: a worker is a scarce resource, and a
                // client holding a read open (idle keep-alive or a
                // slowloris half-frame) past the deadline is evicted.
                let _ =
                    stream.set_read_timeout(Some(Duration::from_millis(shared.read_deadline_ms)));
            }
            shared
                .conns
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .insert(conn_id, clone);
        }
        // Connection errors (disconnects, malformed frames, injected
        // severs) end that connection only; the worker lives on.
        let _ = serve_connection(stream, shared);
        shared
            .conns
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(&conn_id);
    }
}

/// Serves one connection to completion: request frames in, response
/// frames out, until BYE, EOF or an I/O error.
fn serve_connection(mut stream: TcpStream, shared: &Shared) -> io::Result<()> {
    loop {
        let request = match read_request(&mut stream) {
            Ok(r) => r,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // During a drain this is the intended 200 ms unblock; in
                // steady state it is the read deadline firing on a slow
                // client, which costs the client its connection.
                if !shared.draining.load(Ordering::Acquire) {
                    obs::count("serve.slow_evictions", 1);
                }
                return Ok(());
            }
            Err(e) => {
                obs::count("serve.protocol_errors", 1);
                return Err(e);
            }
        };
        let started = Instant::now();
        match request {
            Request::Bye { .. } => {
                write_frame(&mut stream, &encode_response(&Response::Bye))?;
                return Ok(());
            }
            Request::Query { user, sql } => {
                obs::count("serve.requests", 1);
                let response = if shared.draining.load(Ordering::Acquire) {
                    Response::Refused {
                        reason: RefusalReason::Draining,
                        message: "server is draining for shutdown".to_owned(),
                    }
                } else {
                    let session = shared.session_for(user);
                    let mut session = session
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    let data = shared
                        .data
                        .read()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    session.answer_segmented(&data, &sql)
                };
                match &response {
                    Response::Refused { reason, .. } => {
                        obs::count(&format!("serve.refused.{}", reason.label()), 1);
                    }
                    Response::Error(_) => obs::count("serve.parse_errors", 1),
                    _ => obs::count("serve.answers", 1),
                }
                let frame = encode_response(&response);
                if faultkit::fire("serve.partial_response") {
                    // Injected fault: the server dies mid-write. Send a
                    // strict prefix of the frame and sever the socket —
                    // the framing guarantees the client sees an I/O
                    // error, never a shorter answer that still parses.
                    obs::count("serve.faults.partial_response", 1);
                    let cut = (frame.len() / 2).max(1);
                    let _ = write_frame(&mut stream, &frame[..cut]);
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                    return Ok(());
                }
                write_frame(&mut stream, &frame)?;
                obs::observe("serve.request_ns", started.elapsed().as_nanos() as u64);
            }
            Request::PirFetch { user: _, index } => {
                obs::count("serve.pir.requests", 1);
                // PIR admission charges no ε: the user-privacy dimension
                // protects *which* record is read, not an aggregate. The
                // batcher coalesces concurrent fetches into fused sweeps.
                let response = if shared.draining.load(Ordering::Acquire) {
                    Response::Refused {
                        reason: RefusalReason::Draining,
                        message: "server is draining for shutdown".to_owned(),
                    }
                } else if index >= shared.pir.len() as u64 {
                    Response::Error(format!(
                        "record index {index} out of range: PIR store has {} records",
                        shared.pir.len()
                    ))
                } else {
                    Response::Record(shared.batcher.fetch(&shared.pir, index as usize))
                };
                match &response {
                    Response::Refused { reason, .. } => {
                        obs::count(&format!("serve.refused.{}", reason.label()), 1);
                    }
                    Response::Error(_) => obs::count("serve.pir.range_errors", 1),
                    _ => obs::count("serve.pir.answers", 1),
                }
                write_frame(&mut stream, &encode_response(&response))?;
                obs::observe("serve.request_ns", started.elapsed().as_nanos() as u64);
            }
            Request::Append { user: _, count } => {
                obs::count("serve.requests", 1);
                let response = if shared.draining.load(Ordering::Acquire) {
                    Response::Refused {
                        reason: RefusalReason::Draining,
                        message: "server is draining for shutdown".to_owned(),
                    }
                } else if count > MAX_APPEND {
                    Response::Error(format!(
                        "append of {count} rows exceeds the per-request cap of {MAX_APPEND}"
                    ))
                } else {
                    let mut data = shared
                        .data
                        .write()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    let start = data.num_rows() as u64;
                    let appended = (0..u64::from(count))
                        .try_for_each(|i| data.push_row(synth_row(shared.seed, start + i)));
                    match appended {
                        Ok(()) => {
                            obs::count("serve.appends", 1);
                            obs::count("serve.append_rows", u64::from(count));
                            Response::Exact(data.num_rows() as f64)
                        }
                        Err(e) => Response::Error(format!("append failed: {e}")),
                    }
                };
                match &response {
                    Response::Refused { reason, .. } => {
                        obs::count(&format!("serve.refused.{}", reason.label()), 1);
                    }
                    Response::Error(_) => obs::count("serve.append_errors", 1),
                    _ => obs::count("serve.answers", 1),
                }
                write_frame(&mut stream, &encode_response(&response))?;
                obs::observe("serve.request_ns", started.elapsed().as_nanos() as u64);
            }
            Request::Seal { user: _ } => {
                obs::count("serve.requests", 1);
                let response = if shared.draining.load(Ordering::Acquire) {
                    Response::Refused {
                        reason: RefusalReason::Draining,
                        message: "server is draining for shutdown".to_owned(),
                    }
                } else {
                    let mut data = shared
                        .data
                        .write()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    // Sealing an empty tail is a no-op, not an error: the
                    // answer is the sealed-segment count either way.
                    data.seal();
                    obs::count("serve.seals", 1);
                    let segments = data.num_segments() as f64;
                    drop(data);
                    if shared.compact_min > 0 {
                        let (pending, cv) = &shared.compact_signal;
                        *pending
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner) += 1;
                        cv.notify_one();
                    }
                    Response::Exact(segments)
                };
                match &response {
                    Response::Refused { reason, .. } => {
                        obs::count(&format!("serve.refused.{}", reason.label()), 1);
                    }
                    _ => obs::count("serve.answers", 1),
                }
                write_frame(&mut stream, &encode_response(&response))?;
                obs::observe("serve.request_ns", started.elapsed().as_nanos() as u64);
            }
            Request::Disguise { user } | Request::Restore { user } => {
                let is_disguise = matches!(request, Request::Disguise { .. });
                obs::count("serve.requests", 1);
                let response = if shared.draining.load(Ordering::Acquire) {
                    Response::Refused {
                        reason: RefusalReason::Draining,
                        message: "server is draining for shutdown".to_owned(),
                    }
                } else {
                    let mut engine = shared
                        .disguise
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    let result = if is_disguise {
                        engine.disguise(user)
                    } else {
                        engine.restore(user)
                    };
                    match result {
                        // The answer is the number of rows re-owned or
                        // returned — the client's receipt.
                        Ok(outcome) => Response::Exact(outcome.rows as f64),
                        // Wrong-state requests are policy refusals, typed
                        // on the wire like any other admission refusal.
                        Err(
                            e @ (tdf_disguise::Error::AlreadyDisguised(_)
                            | tdf_disguise::Error::NotDisguised(_)
                            | tdf_disguise::Error::NoRows(_)),
                        ) => Response::Refused {
                            reason: RefusalReason::Policy,
                            message: e.to_string(),
                        },
                        // Crash-stop (exhausted fault budget) and journal
                        // failures are server-side errors; the engine
                        // refuses further transactions until recovery.
                        Err(e) => Response::Error(format!("disguise engine: {e}")),
                    }
                };
                match &response {
                    Response::Refused { reason, .. } => {
                        obs::count(&format!("serve.refused.{}", reason.label()), 1);
                    }
                    Response::Error(_) => obs::count("serve.disguise_errors", 1),
                    _ => {
                        obs::count(
                            if is_disguise {
                                "serve.disguises"
                            } else {
                                "serve.restores"
                            },
                            1,
                        );
                        obs::count("serve.answers", 1);
                    }
                }
                write_frame(&mut stream, &encode_response(&response))?;
                obs::observe("serve.request_ns", started.elapsed().as_nanos() as u64);
            }
        }
    }
}
