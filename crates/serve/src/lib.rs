//! # tdf-serve
//!
//! Privacy-as-a-service: the statistical database of `tdf-querydb`
//! exposed as a long-lived TCP service, hermetic over `std::net`.
//!
//! The paper's user-privacy dimension presumes an *online* statistical
//! database that real users query interactively; this crate is that
//! deployment surface. The privacy boundary is the query endpoint
//! itself (after the service-oriented architectures of the cloud-
//! database line of work in PAPERS.md): every request passes an
//! admission path — per-user ε-budget, tracker (differencing)
//! detection, evaluation deadlines — and every refusal travels as a
//! typed wire code mirroring `querydb`'s in-process `Answer::Refused`.
//!
//! * [`protocol`] — the framed binary wire format (length-delimited, so
//!   truncation is always detectable);
//! * [`session`] — per-user budget + history state and the admission
//!   path;
//! * [`batch`] — PIR batch admission: concurrent `PIR_FETCH` requests
//!   from different connections coalesce into one fused database sweep;
//! * [`server`] — accept loop, connection workers, the background
//!   segment compactor (`TDF_COMPACT_MIN`), draining shutdown,
//!   `tdf-obs` metrics;
//! * [`client`] — a blocking client;
//! * [`loadgen`] — the closed-loop Zipfian workload driver behind
//!   `BENCH_serve.json`.

pub mod batch;
pub mod client;
pub mod loadgen;
pub mod protocol;
pub mod server;
pub mod session;

pub use batch::PirBatcher;
pub use client::Client;
pub use loadgen::{LoadConfig, LoadReport};
pub use protocol::{RefusalReason, Request, Response};
pub use server::{pir_record, Server, ServerConfig};
pub use session::{SessionConfig, UserSession};
