//! The framed binary wire protocol.
//!
//! Both directions are length-delimited so a reader can always tell a
//! complete frame from a truncated one — the property the shutdown and
//! fault-injection tests lean on: a response cut mid-write is an I/O
//! error at the client, never a shorter answer that still parses.
//!
//! All integers are little-endian.
//!
//! ```text
//! request  := opcode:u8  user_id:u64  len:u32  payload:[u8; len]
//!             opcode 1 = QUERY     (payload is UTF-8 mini-SQL)
//!             opcode 2 = BYE       (len must be 0)
//!             opcode 3 = PIR_FETCH (len must be 8; payload is index:u64)
//!             opcode 4 = APPEND    (len must be 4; payload is count:u32)
//!             opcode 5 = SEAL      (len must be 0)
//!             opcode 6 = DISGUISE  (len must be 0)
//!             opcode 7 = RESTORE   (len must be 0)
//!
//! response := tag:u8  body
//!             tag 0 = EXACT      body = value:f64
//!             tag 1 = PERTURBED  body = value:f64
//!             tag 2 = INTERVAL   body = lo:f64 hi:f64
//!             tag 3 = REFUSED    body = reason:u8 len:u32 msg:[u8; len]
//!             tag 4 = ERROR      body = len:u32 msg:[u8; len]
//!             tag 5 = BYE        body = empty
//!             tag 6 = RECORD     body = len:u32 bytes:[u8; len]
//! ```

use std::io::{self, Read, Write};

/// Requests larger than this are rejected before the payload is read, so
/// a hostile length prefix cannot make the server allocate unboundedly.
pub const MAX_PAYLOAD: u32 = 64 * 1024;

/// A client-to-server frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Submit one mini-SQL query on behalf of `user`.
    Query {
        /// The session's user id (no authentication — ids are claims).
        user: u64,
        /// Query text in the `tdf-querydb` mini-SQL syntax.
        sql: String,
    },
    /// End the session; the server acknowledges and closes.
    Bye {
        /// The session's user id.
        user: u64,
    },
    /// Fetch one record from the server's PIR store. Requests from many
    /// users coalesce into fused batch sweeps server-side.
    PirFetch {
        /// The session's user id.
        user: u64,
        /// Record index to fetch.
        index: u64,
    },
    /// Append `count` synthetic records to the server's mutable tail.
    /// Record content is deterministic per *global row index*, so the
    /// population is independent of how appends are chunked.
    Append {
        /// The session's user id.
        user: u64,
        /// Number of records to append.
        count: u32,
    },
    /// Freeze the mutable tail into a sealed (spillable) segment.
    Seal {
        /// The session's user id.
        user: u64,
    },
    /// Unsubscribe: atomically re-own every row of `user`'s ledger
    /// records to ghost principals and redact the payload per policy.
    Disguise {
        /// The user unsubscribing (the rows disguised are theirs).
        user: u64,
    },
    /// Resubscribe: atomically restore `user`'s disguised rows bit for
    /// bit.
    Restore {
        /// The user resubscribing.
        user: u64,
    },
}

/// Why a query was refused, as a wire-stable code. The human-readable
/// message travels alongside; the code is what counters and tests key on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RefusalReason {
    /// Refusal class not covered below (e.g. undeclared SUM range).
    Other = 0,
    /// The user's privacy budget is exhausted.
    Budget = 1,
    /// The query exceeded its evaluation deadline.
    Deadline = 2,
    /// The query fits a tracker (differencing) pattern.
    Tracker = 3,
    /// A static admission rule refused (e.g. query set below minimum).
    Policy = 4,
    /// The server is draining for shutdown.
    Draining = 5,
}

impl RefusalReason {
    fn from_wire(code: u8) -> io::Result<Self> {
        Ok(match code {
            0 => RefusalReason::Other,
            1 => RefusalReason::Budget,
            2 => RefusalReason::Deadline,
            3 => RefusalReason::Tracker,
            4 => RefusalReason::Policy,
            5 => RefusalReason::Draining,
            other => return Err(bad(format!("unknown refusal reason {other}"))),
        })
    }

    /// The counter-name suffix used by the server's obs metrics.
    pub fn label(self) -> &'static str {
        match self {
            RefusalReason::Other => "other",
            RefusalReason::Budget => "budget",
            RefusalReason::Deadline => "deadline",
            RefusalReason::Tracker => "tracker",
            RefusalReason::Policy => "policy",
            RefusalReason::Draining => "draining",
        }
    }
}

/// A server-to-client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The exact aggregate value.
    Exact(f64),
    /// A perturbed (noisy) aggregate value.
    Perturbed(f64),
    /// An interval guaranteed to contain the true value.
    Interval(f64, f64),
    /// The query was refused by the admission path.
    Refused {
        /// Machine-readable refusal class.
        reason: RefusalReason,
        /// Human-readable explanation.
        message: String,
    },
    /// The request itself failed (parse error, unknown attribute, …).
    Error(String),
    /// Acknowledgement of a `Bye`.
    Bye,
    /// The record bytes answering a `PirFetch`.
    Record(Vec<u8>),
}

impl Response {
    /// True for the `Refused` variant.
    pub fn is_refused(&self) -> bool {
        matches!(self, Response::Refused { .. })
    }

    /// A best-guess point value, if the response carries one.
    pub fn point(&self) -> Option<f64> {
        match self {
            Response::Exact(v) | Response::Perturbed(v) => Some(*v),
            Response::Interval(lo, hi) => Some(0.5 * (lo + hi)),
            _ => None,
        }
    }
}

fn bad(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

fn read_u8(r: &mut impl Read) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_f64(r: &mut impl Read) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

fn read_bytes(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let len = read_u32(r)?;
    if len > MAX_PAYLOAD {
        return Err(bad(format!("frame payload of {len} bytes exceeds cap")));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

fn read_string(r: &mut impl Read) -> io::Result<String> {
    String::from_utf8(read_bytes(r)?).map_err(|_| bad("payload is not UTF-8".to_owned()))
}

/// Serializes one request into a byte buffer.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    match req {
        Request::Query { user, sql } => {
            out.push(1);
            out.extend_from_slice(&user.to_le_bytes());
            out.extend_from_slice(&(sql.len() as u32).to_le_bytes());
            out.extend_from_slice(sql.as_bytes());
        }
        Request::Bye { user } => {
            out.push(2);
            out.extend_from_slice(&user.to_le_bytes());
            out.extend_from_slice(&0u32.to_le_bytes());
        }
        Request::PirFetch { user, index } => {
            out.push(3);
            out.extend_from_slice(&user.to_le_bytes());
            out.extend_from_slice(&8u32.to_le_bytes());
            out.extend_from_slice(&index.to_le_bytes());
        }
        Request::Append { user, count } => {
            out.push(4);
            out.extend_from_slice(&user.to_le_bytes());
            out.extend_from_slice(&4u32.to_le_bytes());
            out.extend_from_slice(&count.to_le_bytes());
        }
        Request::Seal { user } => {
            out.push(5);
            out.extend_from_slice(&user.to_le_bytes());
            out.extend_from_slice(&0u32.to_le_bytes());
        }
        Request::Disguise { user } => {
            out.push(6);
            out.extend_from_slice(&user.to_le_bytes());
            out.extend_from_slice(&0u32.to_le_bytes());
        }
        Request::Restore { user } => {
            out.push(7);
            out.extend_from_slice(&user.to_le_bytes());
            out.extend_from_slice(&0u32.to_le_bytes());
        }
    }
    out
}

/// Reads one complete request frame.
pub fn read_request(r: &mut impl Read) -> io::Result<Request> {
    let opcode = read_u8(r)?;
    let user = read_u64(r)?;
    match opcode {
        1 => Ok(Request::Query {
            user,
            sql: read_string(r)?,
        }),
        2 => {
            let len = read_u32(r)?;
            if len != 0 {
                return Err(bad("BYE carries no payload".to_owned()));
            }
            Ok(Request::Bye { user })
        }
        3 => {
            let len = read_u32(r)?;
            if len != 8 {
                return Err(bad(format!(
                    "PIR_FETCH payload is exactly 8 bytes, got {len}"
                )));
            }
            Ok(Request::PirFetch {
                user,
                index: read_u64(r)?,
            })
        }
        4 => {
            let len = read_u32(r)?;
            if len != 4 {
                return Err(bad(format!("APPEND payload is exactly 4 bytes, got {len}")));
            }
            let mut b = [0u8; 4];
            r.read_exact(&mut b)?;
            Ok(Request::Append {
                user,
                count: u32::from_le_bytes(b),
            })
        }
        5 => {
            let len = read_u32(r)?;
            if len != 0 {
                return Err(bad("SEAL carries no payload".to_owned()));
            }
            Ok(Request::Seal { user })
        }
        6 => {
            let len = read_u32(r)?;
            if len != 0 {
                return Err(bad("DISGUISE carries no payload".to_owned()));
            }
            Ok(Request::Disguise { user })
        }
        7 => {
            let len = read_u32(r)?;
            if len != 0 {
                return Err(bad("RESTORE carries no payload".to_owned()));
            }
            Ok(Request::Restore { user })
        }
        other => Err(bad(format!("unknown opcode {other}"))),
    }
}

/// Serializes one response into a byte buffer.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    match resp {
        Response::Exact(v) => {
            out.push(0);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Response::Perturbed(v) => {
            out.push(1);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Response::Interval(lo, hi) => {
            out.push(2);
            out.extend_from_slice(&lo.to_le_bytes());
            out.extend_from_slice(&hi.to_le_bytes());
        }
        Response::Refused { reason, message } => {
            out.push(3);
            out.push(*reason as u8);
            out.extend_from_slice(&(message.len() as u32).to_le_bytes());
            out.extend_from_slice(message.as_bytes());
        }
        Response::Error(message) => {
            out.push(4);
            out.extend_from_slice(&(message.len() as u32).to_le_bytes());
            out.extend_from_slice(message.as_bytes());
        }
        Response::Bye => out.push(5),
        Response::Record(bytes) => {
            out.push(6);
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(bytes);
        }
    }
    out
}

/// Reads one complete response frame.
pub fn read_response(r: &mut impl Read) -> io::Result<Response> {
    match read_u8(r)? {
        0 => Ok(Response::Exact(read_f64(r)?)),
        1 => Ok(Response::Perturbed(read_f64(r)?)),
        2 => Ok(Response::Interval(read_f64(r)?, read_f64(r)?)),
        3 => {
            let reason = RefusalReason::from_wire(read_u8(r)?)?;
            Ok(Response::Refused {
                reason,
                message: read_string(r)?,
            })
        }
        4 => Ok(Response::Error(read_string(r)?)),
        5 => Ok(Response::Bye),
        6 => Ok(Response::Record(read_bytes(r)?)),
        other => Err(bad(format!("unknown response tag {other}"))),
    }
}

/// Writes a pre-encoded frame in one call.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    w.write_all(frame)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let bytes = encode_request(&req);
        let mut cursor = io::Cursor::new(bytes);
        assert_eq!(read_request(&mut cursor).unwrap(), req);
    }

    fn round_trip_response(resp: Response) {
        let bytes = encode_response(&resp);
        let mut cursor = io::Cursor::new(bytes);
        assert_eq!(read_response(&mut cursor).unwrap(), resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Query {
            user: 42,
            sql: "SELECT COUNT(*) FROM t".to_owned(),
        });
        round_trip_request(Request::Query {
            user: u64::MAX,
            sql: String::new(),
        });
        round_trip_request(Request::Bye { user: 7 });
        round_trip_request(Request::PirFetch {
            user: 3,
            index: 9_999_999,
        });
        round_trip_request(Request::PirFetch {
            user: u64::MAX,
            index: 0,
        });
        round_trip_request(Request::Append {
            user: 11,
            count: 5000,
        });
        round_trip_request(Request::Append {
            user: 0,
            count: u32::MAX,
        });
        round_trip_request(Request::Seal { user: 11 });
        round_trip_request(Request::Disguise { user: 6 });
        round_trip_request(Request::Restore { user: u64::MAX });
    }

    #[test]
    fn pir_fetch_length_must_be_exactly_eight() {
        let mut bytes = vec![3u8];
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&7u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 7]);
        assert!(read_request(&mut io::Cursor::new(bytes)).is_err());
    }

    #[test]
    fn append_and_seal_lengths_are_validated() {
        // APPEND with a 3-byte payload is malformed.
        let mut bytes = vec![4u8];
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&3u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 3]);
        assert!(read_request(&mut io::Cursor::new(bytes)).is_err());
        // SEAL with any payload is malformed.
        let mut bytes = vec![5u8];
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(0);
        assert!(read_request(&mut io::Cursor::new(bytes)).is_err());
        // Every proper prefix of a well-formed APPEND fails to parse.
        let frame = encode_request(&Request::Append { user: 9, count: 64 });
        for cut in 0..frame.len() {
            let mut cursor = io::Cursor::new(&frame[..cut]);
            assert!(read_request(&mut cursor).is_err(), "prefix {cut} parsed");
        }
    }

    #[test]
    fn disguise_and_restore_lengths_are_validated() {
        for opcode in [6u8, 7u8] {
            // Any payload is malformed.
            let mut bytes = vec![opcode];
            bytes.extend_from_slice(&1u64.to_le_bytes());
            bytes.extend_from_slice(&1u32.to_le_bytes());
            bytes.push(0);
            assert!(read_request(&mut io::Cursor::new(bytes)).is_err());
        }
        // Every proper prefix of a well-formed DISGUISE fails to parse.
        let frame = encode_request(&Request::Disguise { user: 9 });
        for cut in 0..frame.len() {
            let mut cursor = io::Cursor::new(&frame[..cut]);
            assert!(read_request(&mut cursor).is_err(), "prefix {cut} parsed");
        }
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Exact(146.0));
        round_trip_response(Response::Perturbed(-3.75));
        round_trip_response(Response::Interval(1.0, 2.0));
        round_trip_response(Response::Refused {
            reason: RefusalReason::Budget,
            message: "privacy budget exhausted".to_owned(),
        });
        round_trip_response(Response::Error("parse error".to_owned()));
        round_trip_response(Response::Bye);
        round_trip_response(Response::Record(vec![0xDE, 0xAD, 0x00, 0x42]));
        round_trip_response(Response::Record(Vec::new()));
    }

    #[test]
    fn truncated_frames_are_io_errors_not_answers() {
        for resp in [
            Response::Perturbed(5.0),
            Response::Refused {
                reason: RefusalReason::Tracker,
                message: "tracker pattern detected".to_owned(),
            },
            Response::Record(vec![1, 2, 3, 4, 5, 6, 7, 8]),
        ] {
            let bytes = encode_response(&resp);
            // Every proper prefix must fail to parse — a partial write can
            // never be mistaken for a (different) complete answer.
            for cut in 0..bytes.len() {
                let mut cursor = io::Cursor::new(&bytes[..cut]);
                assert!(read_response(&mut cursor).is_err(), "prefix {cut} parsed");
            }
        }
    }

    #[test]
    fn oversized_length_prefixes_are_rejected() {
        let mut bytes = vec![4u8];
        bytes.extend_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        let mut cursor = io::Cursor::new(bytes);
        assert!(read_response(&mut cursor).is_err());
    }

    #[test]
    fn unknown_opcodes_and_tags_are_rejected() {
        let mut req = vec![9u8];
        req.extend_from_slice(&1u64.to_le_bytes());
        req.extend_from_slice(&0u32.to_le_bytes());
        assert!(read_request(&mut io::Cursor::new(req)).is_err());
        assert!(read_response(&mut io::Cursor::new(vec![9u8])).is_err());
    }
}
