//! Scripted end-to-end smoke session for CI.
//!
//! Starts a server on an ephemeral port with a seed taken from
//! `TDF_SEED`, drives one scripted client session over a real socket —
//! answered queries, one budget-exhaustion refusal, one tracker
//! refusal, a clean BYE — then shuts the server down, printing a
//! transcript that `ci/check.sh` diffs against
//! `ci/golden/serve_smoke.txt`. Everything printed is deterministic in
//! the seed: noise streams are seeded per user and the script is a
//! single connection, so there is no scheduling in the transcript.

use tdf_serve::{Client, Response, ServerConfig, SessionConfig};

fn seed_from_env() -> u64 {
    std::env::var("TDF_SEED")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(0x7DF)
}

fn show(response: &Response) -> String {
    match response {
        Response::Exact(v) => format!("exact {v:.6}"),
        Response::Perturbed(v) => format!("perturbed {v:.6}"),
        Response::Interval(lo, hi) => format!("interval [{lo:.6}, {hi:.6}]"),
        Response::Refused { reason, message } => {
            format!("refused[{}] {message}", reason.label())
        }
        Response::Error(message) => format!("error {message}"),
        Response::Record(bytes) => {
            let hex: String = bytes.iter().take(8).map(|b| format!("{b:02x}")).collect();
            format!("record {} bytes {hex}..", bytes.len())
        }
        Response::Bye => "bye".to_owned(),
    }
}

fn main() {
    let seed = seed_from_env();
    let server = tdf_serve::Server::start(ServerConfig {
        rows: 400,
        seed,
        workers: 2,
        session: SessionConfig {
            epsilon_per_query: 1.0,
            budget: 3.0,
            seed,
            min_query_set: 2,
            max_overlap: 300,
            max_rows: 0,
        },
        ..ServerConfig::default()
    })
    .expect("server starts on an ephemeral port");

    println!("# tdf-serve smoke transcript (seed {seed})");
    let mut client = Client::connect(server.addr()).expect("client connects");

    // User 1 exhausts a 3ε budget: the halves of the weight range are
    // (near-)disjoint query sets, so the overlap defence stays quiet and
    // the fourth query hits the budget wall.
    let budget_script = [
        "SELECT COUNT(*) FROM t WHERE weight < 78",
        "SELECT COUNT(*) FROM t WHERE weight >= 78",
        "SELECT AVG(blood_pressure) FROM t WHERE weight < 78",
        "SELECT COUNT(*) FROM t WHERE weight >= 78",
    ];
    for (i, sql) in budget_script.iter().enumerate() {
        let response = client.query(1, sql).expect("query round-trips");
        println!("u1 q{} {sql} -> {}", i + 1, show(&response));
    }

    // User 2 walks into the tracker defence: two nearly identical query
    // sets overlap far beyond the permitted 300 records.
    let tracker_script = [
        "SELECT AVG(weight) FROM t WHERE height >= 150",
        "SELECT AVG(weight) FROM t WHERE height >= 151",
    ];
    for (i, sql) in tracker_script.iter().enumerate() {
        let response = client.query(2, sql).expect("query round-trips");
        println!("u2 q{} {sql} -> {}", i + 1, show(&response));
    }

    // User 3 fetches a PIR record (seed-deterministic contents) and then
    // asks for one past the end of the store.
    let fetched = client.pir_fetch(3, 7).expect("fetch round-trips");
    println!("u3 fetch 7 -> {}", show(&fetched));
    let ranged = client.pir_fetch(3, 1 << 40).expect("fetch round-trips");
    println!("u3 fetch 2^40 -> {}", show(&ranged));

    let farewell = client.bye(1).expect("bye round-trips");
    println!("u1 bye -> {}", show(&farewell));

    server.shutdown();
    println!("shutdown complete");
}
