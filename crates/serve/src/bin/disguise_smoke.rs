//! Scripted unsubscribe/resubscribe smoke session for CI.
//!
//! Starts a server on an ephemeral port with a seed taken from
//! `TDF_SEED` and drives one scripted client session over a real
//! socket: a successful DISGUISE, the typed refusals (double disguise,
//! unknown owner, restore of a never-disguised user), a successful
//! RESTORE, and a query riding the same connection to show the
//! analytic path is untouched by ledger traffic. The transcript is
//! diffed against `ci/golden/disguise_smoke.txt` by `ci/check.sh`.
//! Everything printed is deterministic in the seed: row ownership is
//! round-robin, refusal messages are typed, and the script is a single
//! connection, so there is no scheduling in the transcript.

use tdf_serve::{Client, Response, ServerConfig, SessionConfig};

fn seed_from_env() -> u64 {
    std::env::var("TDF_SEED")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(0x7DF)
}

fn show(response: &Response) -> String {
    match response {
        Response::Exact(v) => format!("exact {v:.6}"),
        Response::Perturbed(v) => format!("perturbed {v:.6}"),
        Response::Interval(lo, hi) => format!("interval [{lo:.6}, {hi:.6}]"),
        Response::Refused { reason, message } => {
            format!("refused[{}] {message}", reason.label())
        }
        Response::Error(message) => format!("error {message}"),
        Response::Record(bytes) => {
            let hex: String = bytes.iter().take(8).map(|b| format!("{b:02x}")).collect();
            format!("record {} bytes {hex}..", bytes.len())
        }
        Response::Bye => "bye".to_owned(),
    }
}

fn main() {
    let seed = seed_from_env();
    let server = tdf_serve::Server::start(ServerConfig {
        rows: 400,
        seed,
        workers: 2,
        disguise_users: 8,
        session: SessionConfig {
            epsilon_per_query: 1.0,
            budget: 3.0,
            seed,
            min_query_set: 2,
            max_overlap: 300,
            max_rows: 0,
        },
        ..ServerConfig::default()
    })
    .expect("server starts on an ephemeral port");

    println!("# tdf-serve disguise smoke transcript (seed {seed})");
    let mut client = Client::connect(server.addr()).expect("client connects");

    // 400 ledger rows round-robined over 8 owners: 50 rows each. User 5
    // unsubscribes; the answer is the number of rows re-owned by ghosts.
    let disguised = client.disguise(5).expect("disguise round-trips");
    println!("u5 disguise -> {}", show(&disguised));

    // The wrong-state requests are typed policy refusals, not errors.
    let twice = client.disguise(5).expect("disguise round-trips");
    println!("u5 disguise again -> {}", show(&twice));
    let unknown = client.disguise(9000).expect("disguise round-trips");
    println!("u9000 disguise -> {}", show(&unknown));
    let phantom = client.restore(6).expect("restore round-trips");
    println!("u6 restore -> {}", show(&phantom));

    // Queries keep flowing on the same connection while user 5 is out.
    let answered = client
        .query(2, "SELECT COUNT(*) FROM t WHERE weight < 78")
        .expect("query round-trips");
    println!("u2 query -> {}", show(&answered));

    // Resubscribe: the same 50 rows come back, exactly once.
    let restored = client.restore(5).expect("restore round-trips");
    println!("u5 restore -> {}", show(&restored));
    let again = client.restore(5).expect("restore round-trips");
    println!("u5 restore again -> {}", show(&again));

    let farewell = client.bye(5).expect("bye round-trips");
    println!("u5 bye -> {}", show(&farewell));

    server.shutdown();
    println!("shutdown complete");
}
