//! A blocking client for the framed protocol — used by the load
//! generator, the CI smoke script and the integration tests.

use crate::protocol::{encode_request, read_response, write_frame, Request, Response};
use std::io;
use std::net::{SocketAddr, TcpStream};

/// One connection to a `tdf-serve` server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Submits one query on behalf of `user` and awaits the response.
    /// A truncated or malformed response frame is an `Err`, never a
    /// partial answer.
    pub fn query(&mut self, user: u64, sql: &str) -> io::Result<Response> {
        let request = Request::Query {
            user,
            sql: sql.to_owned(),
        };
        write_frame(&mut self.stream, &encode_request(&request))?;
        read_response(&mut self.stream)
    }

    /// Fetches one PIR record on behalf of `user`; the server batches
    /// concurrent fetches from all connections into fused sweeps.
    pub fn pir_fetch(&mut self, user: u64, index: u64) -> io::Result<Response> {
        let request = Request::PirFetch { user, index };
        write_frame(&mut self.stream, &encode_request(&request))?;
        read_response(&mut self.stream)
    }

    /// Appends `count` synthetic records to the server's mutable tail.
    /// The server answers with the new total row count as
    /// [`Response::Exact`].
    pub fn append(&mut self, user: u64, count: u32) -> io::Result<Response> {
        let request = Request::Append { user, count };
        write_frame(&mut self.stream, &encode_request(&request))?;
        read_response(&mut self.stream)
    }

    /// Freezes the server's mutable tail into a sealed segment. The
    /// server answers with the sealed-segment count as
    /// [`Response::Exact`].
    pub fn seal(&mut self, user: u64) -> io::Result<Response> {
        let request = Request::Seal { user };
        write_frame(&mut self.stream, &encode_request(&request))?;
        read_response(&mut self.stream)
    }

    /// Unsubscribes `user`: atomically disguises every ledger row they
    /// own. The server answers with the number of rows re-owned as
    /// [`Response::Exact`]; a wrong-state request (already disguised, no
    /// rows) is a typed policy refusal.
    pub fn disguise(&mut self, user: u64) -> io::Result<Response> {
        write_frame(
            &mut self.stream,
            &encode_request(&Request::Disguise { user }),
        )?;
        read_response(&mut self.stream)
    }

    /// Resubscribes `user`: atomically restores their disguised rows bit
    /// for bit. The server answers with the number of rows returned as
    /// [`Response::Exact`].
    pub fn restore(&mut self, user: u64) -> io::Result<Response> {
        write_frame(
            &mut self.stream,
            &encode_request(&Request::Restore { user }),
        )?;
        read_response(&mut self.stream)
    }

    /// Ends the session cleanly; the server acknowledges with
    /// [`Response::Bye`].
    pub fn bye(&mut self, user: u64) -> io::Result<Response> {
        write_frame(&mut self.stream, &encode_request(&Request::Bye { user }))?;
        read_response(&mut self.stream)
    }
}
