//! Integration tests spanning multiple crates: mask → serialize → serve →
//! query → attack pipelines that no single crate exercises alone.

use dbpriv::anonymity::{is_k_anonymous, mondrian_anonymize, suppress_to_k_anonymity};
use dbpriv::microdata::csv::{from_csv, to_csv};
use dbpriv::microdata::rng::seeded;
use dbpriv::microdata::synth::{patients, PatientConfig};
use dbpriv::ppdm::condensation::condense;
use dbpriv::querydb::control::ControlPolicy;
use dbpriv::querydb::statdb::StatDb;
use dbpriv::sdc::microaggregation::mdav_microaggregate;
use dbpriv::sdc::noise::{add_noise, NoiseConfig};
use dbpriv::sdc::risk::record_linkage_rate;
use dbpriv::sdc::utility::il1s;

fn population(n: usize) -> dbpriv::microdata::Dataset {
    patients(&PatientConfig {
        n,
        seed: 0xC0FFEE,
        ..Default::default()
    })
}

#[test]
fn every_anonymizer_reaches_its_target_k() {
    let data = population(250);
    let qi = data.schema().quasi_identifier_indices();
    for k in [2usize, 5, 11] {
        assert!(is_k_anonymous(
            &mdav_microaggregate(&data, &qi, k).unwrap().data,
            k
        ));
        assert!(is_k_anonymous(&mondrian_anonymize(&data, k).data, k));
        assert!(is_k_anonymous(&suppress_to_k_anonymity(&data, k).data, k));
        // Condensation releases synthetic records, so it bounds *linkage*
        // at ~1/k instead of producing literal equivalence classes.
        let condensed = condense(&data, &qi, k, &mut seeded(k as u64)).unwrap();
        let rate = record_linkage_rate(&data, &condensed, &qi).unwrap();
        assert!(rate < 2.5 / k as f64, "k = {k}: linkage {rate}");
    }
}

#[test]
fn masked_releases_survive_csv_round_trips() {
    let data = population(60);
    let qi = data.schema().quasi_identifier_indices();
    let masked = mdav_microaggregate(&data, &qi, 4).unwrap().data;
    let text = to_csv(&masked);
    let back = from_csv(masked.schema().clone(), &text).unwrap();
    assert_eq!(masked, back);
    assert!(is_k_anonymous(&back, 4));
}

#[test]
fn risk_utility_ordering_across_methods() {
    // At comparable strength, every masking method trades linkage risk
    // against information loss; unmasked data sit at one extreme.
    let data = population(300);
    let qi = data.schema().quasi_identifier_indices();
    let noise = add_noise(&data, &NoiseConfig::new(0.8, qi.clone()), &mut seeded(1)).unwrap();
    let microagg = mdav_microaggregate(&data, &qi, 8).unwrap().data;

    let raw_risk = record_linkage_rate(&data, &data, &qi).unwrap();
    let noise_risk = record_linkage_rate(&data, &noise, &qi).unwrap();
    let micro_risk = record_linkage_rate(&data, &microagg, &qi).unwrap();
    assert!(raw_risk > noise_risk && raw_risk > micro_risk);

    let raw_loss = il1s(&data, &data, &qi).unwrap();
    let noise_loss = il1s(&data, &noise, &qi).unwrap();
    assert_eq!(raw_loss, 0.0);
    assert!(noise_loss > 0.0);
}

#[test]
fn masked_statdb_blunts_even_unrestricted_queries() {
    // Data masking instead of query control (§6's recommendation when user
    // privacy matters): the isolating query is allowed but harmless.
    let data = dbpriv::microdata::patients::dataset2();
    let qi = data.schema().quasi_identifier_indices();
    let masked = mdav_microaggregate(&data, &qi, 3).unwrap().data;
    let mut db = StatDb::new(masked, ControlPolicy::None);
    let a = db
        .query_str("SELECT COUNT(*) FROM t WHERE height < 165 AND weight > 105")
        .unwrap();
    assert_ne!(a.point(), Some(1.0), "no single record may be isolated");
}

#[test]
fn smc_aggregates_match_plain_statdb_aggregates() {
    // The crypto and non-crypto roads must agree on the statistics.
    use dbpriv::mathkit::Fp61;
    use dbpriv::smc::secure_sum::sharing_secure_sum;

    let data = population(90);
    let parts = data.horizontal_partition(3);
    let local_counts: Vec<Fp61> = parts
        .iter()
        .map(|p| Fp61::new(p.matching_indices(|r| r[3].as_bool() == Some(true)).len() as u64))
        .collect();
    let (secure_total, _) = sharing_secure_sum(&mut seeded(2), &local_counts);

    let mut db = StatDb::new(data, ControlPolicy::None);
    let plain = db
        .query_str("SELECT COUNT(*) FROM t WHERE aids = Y")
        .unwrap();
    assert_eq!(plain.point(), Some(secure_total.raw() as f64));
}

#[test]
fn pir_served_statistics_match_direct_statistics() {
    use dbpriv::core::pipeline::{DeploymentConfig, ThreeDimensionalDb};
    let data = population(40);
    let mut deployment =
        ThreeDimensionalDb::deploy(data.clone(), DeploymentConfig { k: None, pir: true }).unwrap();
    let mut db = StatDb::new(data, ControlPolicy::None);
    let mut rng = seeded(3);
    for src in [
        "SELECT COUNT(*) FROM t WHERE weight > 80",
        "SELECT AVG(blood_pressure) FROM t WHERE height < 175",
        "SELECT SUM(weight) FROM t WHERE aids = N",
        "SELECT MAX(blood_pressure) FROM t",
        "SELECT MIN(height) FROM t WHERE weight > 70",
    ] {
        let q = dbpriv::querydb::parser::parse(src).unwrap();
        let private = deployment.private_query(&mut rng, &q).unwrap();
        let direct = db.query(q).unwrap().point();
        match (private, direct) {
            (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9, "{src}: {a} vs {b}"),
            (a, b) => assert_eq!(a.is_none(), b.is_none(), "{src}: {a:?} vs {b:?}"),
        }
    }
}
