//! Guards the workspace's zero-registry-dependency invariant.
//!
//! The build environment has no network access and an empty cargo
//! registry, so any `crates.io` dependency — however innocuous — breaks
//! `cargo build --offline` for everyone. This test fails the moment a
//! non-path dependency is introduced in any manifest, naming the
//! offending file and line so the fix is obvious. `ci/check.sh` runs the
//! same check from the shell before the build.

use std::path::{Path, PathBuf};

/// All manifests in the workspace: the root plus every `crates/*` member.
fn workspace_manifests() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut manifests = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    for entry in std::fs::read_dir(&crates).expect("crates/ exists") {
        let manifest = entry.expect("readable dir entry").path().join("Cargo.toml");
        if manifest.is_file() {
            manifests.push(manifest);
        }
    }
    assert!(manifests.len() > 5, "workspace member discovery is broken");
    manifests
}

/// True for `[dependencies]`, `[dev-dependencies]`, `[build-dependencies]`,
/// `[workspace.dependencies]` and target-specific variants.
fn is_dependency_section(header: &str) -> bool {
    let h = header.trim_matches(['[', ']']);
    h == "workspace.dependencies"
        || h.ends_with("dependencies") && !h.contains('.')
        || h.starts_with("target.") && h.ends_with("dependencies")
}

/// A dependency declaration is hermetic iff it resolves in-tree: either
/// `{ path = "..." }` or `{ workspace = true }` (the workspace table itself
/// only contains path entries, checked the same way).
fn is_hermetic(line: &str) -> bool {
    line.contains("path =")
        || line.contains("path=")
        || line.contains("workspace = true")
        || line.contains("workspace=true")
}

#[test]
fn no_registry_dependencies_anywhere() {
    let mut violations = Vec::new();
    for manifest in workspace_manifests() {
        let text = std::fs::read_to_string(&manifest)
            .unwrap_or_else(|e| panic!("read {}: {e}", manifest.display()));
        let mut in_dep_section = false;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                in_dep_section = is_dependency_section(line);
                continue;
            }
            if in_dep_section && line.contains('=') && !is_hermetic(line) {
                violations.push(format!("{}:{}: {}", manifest.display(), idx + 1, line));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "registry (non-path) dependencies are banned in this workspace; \
         every dependency must be an in-tree path dependency.\n\
         Offending lines:\n  {}",
        violations.join("\n  ")
    );
}

#[test]
fn workspace_dependency_table_is_all_paths() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("Cargo.toml");
    let text = std::fs::read_to_string(root).expect("root manifest");
    let mut in_table = false;
    let mut entries = 0usize;
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            in_table = line == "[workspace.dependencies]";
            continue;
        }
        if in_table && line.contains('=') {
            entries += 1;
            assert!(
                line.contains("path ="),
                "workspace dependency must be a path dependency: {line}"
            );
        }
    }
    assert!(
        entries >= 14,
        "expected the in-tree crates in [workspace.dependencies]"
    );
}

#[test]
fn storage_crate_dependencies_are_frozen() {
    // The columnar storage refactor (typed buffers, bitmaps, dictionary
    // encoding) is std-only by design. The segment layer (PR 8) added the
    // in-tree observability crate (seal/spill/reload counters) and the
    // fault-injection substrate (crashed-spill and corrupted-reload
    // sites) — both std-only. Any entry beyond these three means the
    // storage layer grew a real dependency — revert it.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    assert_eq!(
        runtime_deps(&root.join("crates/microdata/Cargo.toml")),
        ["tdf-rngkit", "tdf-obs", "tdf-faultkit"],
        "the storage crate must depend only on in-tree std-only crates"
    );
}

/// Names of the `[dependencies]` entries of one manifest.
fn runtime_deps(manifest: &Path) -> Vec<String> {
    let text = std::fs::read_to_string(manifest)
        .unwrap_or_else(|e| panic!("read {}: {e}", manifest.display()));
    let mut in_deps = false;
    let mut deps = Vec::new();
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            in_deps = line == "[dependencies]";
            continue;
        }
        if in_deps && line.contains('=') {
            deps.push(
                line.split(['=', '.'])
                    .next()
                    .unwrap_or("")
                    .trim()
                    .to_string(),
            );
        }
    }
    deps
}

#[test]
fn par_crate_is_registered_and_its_dependencies_are_frozen() {
    // The fork/join substrate must stay in the workspace table, and its
    // runtime dependency set is frozen at exactly the in-tree
    // observability crate (steal counters and dispatch accounting): a new
    // entry here means std-only parallelism grew a dependency — revert it.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let table = std::fs::read_to_string(root.join("Cargo.toml")).expect("root manifest");
    assert!(
        table.contains("tdf-par = { path = \"crates/par\" }"),
        "tdf-par must be a [workspace.dependencies] path entry"
    );
    assert_eq!(
        runtime_deps(&root.join("crates/par/Cargo.toml")),
        ["tdf-obs", "tdf-faultkit"],
        "crates/par must depend only on the in-tree observability and \
         fault-injection crates"
    );
}

#[test]
fn faultkit_crate_is_registered_and_its_dependencies_are_frozen() {
    // The fault-injection substrate sits below every kernel crate, so a
    // dependency added here spreads workspace-wide. Its runtime set is
    // frozen at exactly the observability crate (injected faults are
    // counted); parsing, hashing and the plan registry are std-only.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let table = std::fs::read_to_string(root.join("Cargo.toml")).expect("root manifest");
    assert!(
        table.contains("tdf-faultkit = { path = \"crates/faultkit\" }"),
        "tdf-faultkit must be a [workspace.dependencies] path entry"
    );
    assert_eq!(
        runtime_deps(&root.join("crates/faultkit/Cargo.toml")),
        ["tdf-obs"],
        "crates/faultkit must depend only on the in-tree observability crate"
    );
}

#[test]
fn serve_crate_is_registered_and_its_dependencies_are_frozen() {
    // The service front-end is the outward-facing surface of the
    // workspace; it must stay hermetic over std::net. Its runtime set is
    // frozen at the query engine, the dataset synthesisers, the in-tree
    // RNG, the executor (core sizing), observability and fault
    // injection — no protocol or async frameworks, ever.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let table = std::fs::read_to_string(root.join("Cargo.toml")).expect("root manifest");
    assert!(
        table.contains("tdf-serve = { path = \"crates/serve\" }"),
        "tdf-serve must be a [workspace.dependencies] path entry"
    );
    assert_eq!(
        runtime_deps(&root.join("crates/serve/Cargo.toml")),
        [
            "tdf-querydb",
            "tdf-microdata",
            "tdf-pir",
            "tdf-disguise",
            "tdf-rngkit",
            "tdf-par",
            "tdf-obs",
            "tdf-faultkit"
        ],
        "crates/serve must depend only on the in-tree privacy, PIR, RNG, \
         disguise, parallelism, observability and fault-injection crates"
    );
}

#[test]
fn disguise_crate_is_registered_and_its_dependencies_are_frozen() {
    // The disguise engine sits on the storage layer (datasets + the
    // shared FNV-framed codec idioms), the in-tree RNG (ghost identity
    // derivation), observability and fault injection — nothing else. In
    // particular it must NOT depend on the serve crate (the dependency
    // points the other way) or grow I/O frameworks: the WAL is std::fs.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let table = std::fs::read_to_string(root.join("Cargo.toml")).expect("root manifest");
    assert!(
        table.contains("tdf-disguise = { path = \"crates/disguise\" }"),
        "tdf-disguise must be a [workspace.dependencies] path entry"
    );
    assert_eq!(
        runtime_deps(&root.join("crates/disguise/Cargo.toml")),
        ["tdf-microdata", "tdf-rngkit", "tdf-obs", "tdf-faultkit"],
        "crates/disguise must depend only on the in-tree storage, RNG, \
         observability and fault-injection crates"
    );
}

#[test]
fn obs_crate_is_registered_and_dependency_free() {
    // Every kernel crate links the observability layer, so a dependency
    // added here would spread to the whole workspace. It must stay
    // std-only — and in the workspace table so the path-only check above
    // covers it.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let table = std::fs::read_to_string(root.join("Cargo.toml")).expect("root manifest");
    assert!(
        table.contains("tdf-obs = { path = \"crates/obs\" }"),
        "tdf-obs must be a [workspace.dependencies] path entry"
    );
    assert_eq!(
        runtime_deps(&root.join("crates/obs/Cargo.toml")),
        Vec::<String>::new(),
        "crates/obs must have no runtime dependencies"
    );
}
