//! Cross-crate property tests: invariants that must hold for *any*
//! parameters, not just the scenarios the unit tests pick.

use check::prelude::*;
use dbpriv::anonymity::is_k_anonymous;
use dbpriv::mathkit::Fp61;
use dbpriv::microdata::rng::seeded;
use dbpriv::microdata::synth::{patients, PatientConfig};
use dbpriv::pir::store::Database;

props! {
    #![cases(24)]

    #[test]
    fn microaggregation_always_k_anonymizes(n in 30usize..120, k in 2usize..8, seed in 0u64..50) {
        let data = patients(&PatientConfig { n, seed, ..Default::default() });
        let qi = data.schema().quasi_identifier_indices();
        let masked = dbpriv::sdc::microaggregation::mdav_microaggregate(&data, &qi, k)
            .unwrap()
            .data;
        prop_assert!(is_k_anonymous(&masked, k));
        // Means survive exactly.
        for &c in &qi {
            let m0 = dbpriv::microdata::stats::mean(&data.numeric_column(c)).unwrap();
            let m1 = dbpriv::microdata::stats::mean(&masked.numeric_column(c)).unwrap();
            prop_assert!((m0 - m1).abs() < 1e-6);
        }
    }

    #[test]
    fn mondrian_always_k_anonymizes(n in 30usize..120, k in 2usize..8, seed in 0u64..50) {
        let data = patients(&PatientConfig { n, seed, ..Default::default() });
        let masked = dbpriv::anonymity::mondrian_anonymize(&data, k).data;
        prop_assert!(is_k_anonymous(&masked, k));
    }

    #[test]
    fn pir_retrieves_any_index_of_any_database(
        n in 1usize..60,
        servers in 2usize..5,
        seed in 0u64..100,
    ) {
        let mut rng = seeded(seed);
        let db = Database::new(
            (0..n).map(|i| vec![(i * 37 % 256) as u8, (i * 101 % 256) as u8]).collect(),
        );
        let idx = (seed as usize * 7) % n;
        let (rec, views, cost) = dbpriv::pir::linear::retrieve(&mut rng, &db, servers, idx);
        prop_assert_eq!(rec.as_slice(), db.record(idx));
        prop_assert_eq!(views.len(), servers);
        prop_assert_eq!(cost.servers as usize, servers);
    }

    #[test]
    fn square_pir_agrees_with_linear_pir(n in 4usize..80, seed in 0u64..100) {
        let mut rng = seeded(seed);
        let db = Database::new((0..n).map(|i| vec![(i % 256) as u8; 3]).collect());
        let idx = (seed as usize * 13) % n;
        let (a, _, _) = dbpriv::pir::linear::retrieve(&mut rng, &db, 2, idx);
        let (b, _, _) = dbpriv::pir::square::retrieve(&mut rng, &db, idx);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn secure_sum_equals_plain_sum(values in vec(0u64..1_000_000, 3..10),
                                   seed in 0u64..100) {
        let mut rng = seeded(seed);
        let inputs: Vec<Fp61> = values.iter().map(|&v| Fp61::new(v)).collect();
        let (ring, _) = dbpriv::smc::secure_sum::ring_secure_sum(&mut rng, &inputs);
        let (share, _) = dbpriv::smc::secure_sum::sharing_secure_sum(&mut rng, &inputs);
        let expected: u64 = values.iter().sum();
        prop_assert_eq!(ring, Fp61::new(expected));
        prop_assert_eq!(share, Fp61::new(expected));
    }

    #[test]
    fn query_display_reparses_to_the_same_ast(
        threshold in -500i32..500,
        pick_attr in 0usize..2,
        agg in 0usize..5,
    ) {
        let attr = ["height", "weight"][pick_attr];
        let agg_src = match agg {
            0 => "COUNT(*)".to_owned(),
            1 => format!("SUM({attr})"),
            2 => format!("AVG({attr})"),
            3 => format!("MIN({attr})"),
            _ => format!("MAX({attr})"),
        };
        let src = format!("SELECT {agg_src} FROM t WHERE {attr} < {threshold} AND aids = Y");
        let q1 = dbpriv::querydb::parser::parse(&src).unwrap();
        let q2 = dbpriv::querydb::parser::parse(&q1.to_string()).unwrap();
        prop_assert_eq!(q1, q2);
    }

    #[test]
    fn pir_encode_decode_round_trips_any_patient_population(
        n in 1usize..40,
        seed in 0u64..50,
    ) {
        let data = patients(&PatientConfig { n, seed, ..Default::default() });
        let recs = dbpriv::core::pipeline::encode_records(&data).unwrap();
        for (i, rec) in recs.iter().enumerate() {
            let row = dbpriv::core::pipeline::decode_record(data.schema(), rec).unwrap();
            prop_assert_eq!(row.as_slice(), data.row(i));
        }
    }

    #[test]
    fn noise_then_reconstruction_never_underperforms_for_strong_noise(
        seed in 0u64..20,
    ) {
        // For sigma comparable to the data spread, Bayes reconstruction
        // must beat the naive noisy histogram in total variation.
        use dbpriv::ppdm::agrawal::{distort_column, empirical_distribution,
                                     reconstruct_distribution};
        let mut rng = seeded(seed);
        let xs: Vec<f64> = (0..800)
            .map(|i| if i % 2 == 0 { -2.0 } else { 2.0 })
            .map(|c| c + 0.4 * dbpriv::microdata::rng::standard_normal(&mut rng))
            .collect();
        let sigma = 1.5;
        let ws = distort_column(&xs, sigma, &mut rng);
        let truth = empirical_distribution(&xs, -6.0, 6.0, 16);
        let noisy = empirical_distribution(&ws, -6.0, 6.0, 16);
        let recon = reconstruct_distribution(&ws, sigma, -6.0, 6.0, 16, 120);
        let tv_noisy = dbpriv::microdata::stats::total_variation(&noisy, &truth);
        let tv_recon = recon.tv_distance(&truth);
        prop_assert!(tv_recon < tv_noisy, "recon {tv_recon} vs noisy {tv_noisy}");
    }
}
