//! Observability is inert: running any kernel with `TDF_OBS` forced to 2
//! (counters + spans) must produce bit-identical results to running it
//! with observability off, at thread counts 1 and 4 alike. Instrumentation
//! that changes an answer — by consuming randomness, reordering a fold, or
//! branching on the level anywhere but at the recording site — fails here.

use check::prelude::*;
use dbpriv::microdata::rng::seeded;
use dbpriv::microdata::synth::{census, patients, PatientConfig};
use dbpriv::pir::store::Database;
use dbpriv::querydb::control::ControlPolicy;
use dbpriv::querydb::dp::DpPolicy;
use dbpriv::querydb::statdb::StatDb;
use std::sync::Mutex;

/// The observability level is process-global state: every test in this
/// binary flips it, so they serialise on one lock.
static LEVEL_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` once per (obs level, thread count) combination and returns
/// the four results in a fixed order: (0,1), (2,1), (0,4), (2,4). The
/// registry is cleared afterwards so no counters leak across cases.
fn matrix<T>(f: impl Fn() -> T) -> [T; 4] {
    let _guard = LEVEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let run = |level: u8, threads: usize| {
        obs::set_level(level);
        let out = par::with_threads(threads, &f);
        obs::set_level(0);
        out
    };
    let out = [run(0, 1), run(2, 1), run(0, 4), run(2, 4)];
    obs::reset();
    out
}

props! {
    #![cases(12)]

    #[test]
    fn mdav_is_unchanged_by_observability(n in 30usize..120, k in 2usize..6, seed in 0u64..30) {
        let d = patients(&PatientConfig { n, seed, ..Default::default() });
        let qi = d.schema().quasi_identifier_indices();
        let [off1, on1, off4, on4] =
            matrix(|| dbpriv::sdc::microaggregation::mdav_microaggregate(&d, &qi, k).unwrap());
        // Dataset equality compares float cells by bit pattern.
        prop_assert_eq!(&on1.data, &off1.data);
        prop_assert_eq!(&on1.group_of, &off1.group_of);
        prop_assert_eq!(on1.sse.to_bits(), off1.sse.to_bits());
        prop_assert_eq!(&on4.data, &off4.data);
        prop_assert_eq!(&on4.group_of, &off4.group_of);
        prop_assert_eq!(on4.sse.to_bits(), off4.sse.to_bits());
    }

    #[test]
    fn mondrian_is_unchanged_by_observability(n in 30usize..120, k in 2usize..6, seed in 0u64..30) {
        let d = patients(&PatientConfig { n, seed, ..Default::default() });
        let [off1, on1, off4, on4] = matrix(|| dbpriv::anonymity::mondrian_anonymize(&d, k));
        prop_assert_eq!(&on1.data, &off1.data);
        prop_assert_eq!(&on1.partition_of, &off1.partition_of);
        prop_assert_eq!(&on4.data, &off4.data);
        prop_assert_eq!(&on4.partition_of, &off4.partition_of);
    }

    #[test]
    fn pram_is_unchanged_by_observability(n in 10usize..80, seed in 0u64..30, flip_pct in 0u32..100) {
        let d = census(n, seed);
        let flip = f64::from(flip_pct) / 100.0;
        let [off1, on1, off4, on4] =
            matrix(|| dbpriv::sdc::pram::pram(&d, 4, flip, &mut seeded(seed)).unwrap());
        prop_assert_eq!(&on1, &off1);
        prop_assert_eq!(&on4, &off4);
    }

    #[test]
    fn pir_retrieval_is_unchanged_by_observability(n in 8usize..300, seed in 0u64..30) {
        let db = Database::new((0..n).map(|i| vec![i as u8, (i * 3) as u8]).collect());
        let index = n / 2;
        let [off1, on1, off4, on4] = matrix(|| {
            let mut rng = seeded(seed);
            let lin = dbpriv::pir::linear::retrieve(&mut rng, &db, 3, index);
            let sq = dbpriv::pir::square::retrieve(&mut rng, &db, index);
            let cu = dbpriv::pir::cube::retrieve(&mut rng, &db, 3, index);
            (lin, sq, cu)
        });
        prop_assert_eq!(&on1, &off1);
        prop_assert_eq!(&on4, &off4);
    }

    #[test]
    fn querydb_answers_are_unchanged_by_observability(n in 20usize..100, seed in 0u64..30) {
        let d = patients(&PatientConfig { n, seed, ..Default::default() });
        let queries = [
            "SELECT COUNT(*) FROM t WHERE height < 170",
            "SELECT AVG(weight) FROM t WHERE height >= 150",
            "SELECT SUM(weight) FROM t",
            "SELECT COUNT(*) FROM t WHERE weight > 80",
        ];
        let [off1, on1, off4, on4] = matrix(|| {
            // Exact answers under query-set-size restriction...
            let mut db = StatDb::new(d.clone(), ControlPolicy::SizeRestriction { min_size: 3 });
            let exact: Vec<_> = queries.iter().map(|q| db.query_str(q).unwrap()).collect();
            // ...and Laplace answers under a seeded DP policy (each query
            // draws noise, so instrumentation consuming the RNG would show).
            let mut dp_policy = DpPolicy::new(0.5, 10.0, seed).with_range("weight", 30.0, 200.0);
            let dp: Vec<_> = queries
                .iter()
                .map(|src| {
                    let q = dbpriv::querydb::parser::parse(src).unwrap();
                    let e = dbpriv::querydb::engine::evaluate(&d, &q).unwrap();
                    dp_policy.apply(&d, &q, &e)
                })
                .collect();
            (exact, dp)
        });
        prop_assert_eq!(&on1, &off1);
        prop_assert_eq!(&on4, &off4);
    }
}
