//! Failure-injection and adversarial tests: degenerate inputs, corrupted
//! protocol messages, colluding parties, and non-invertible channels.

use dbpriv::microdata::rng::seeded;
use dbpriv::microdata::{patients, Dataset};

#[test]
fn degenerate_datasets_are_handled_everywhere() {
    let empty = Dataset::new(patients::patient_schema());
    // Checkers treat empty data as vacuously private.
    assert!(dbpriv::anonymity::is_k_anonymous(&empty, 99));
    // Maskers reject impossible parameters instead of panicking.
    assert!(dbpriv::sdc::microaggregation::mdav_microaggregate(&empty, &[0, 1], 3).is_err());
    assert!(dbpriv::ppdm::condensation::condense(&empty, &[0], 2, &mut seeded(1)).is_err());
    // Risk metrics refuse rather than divide by zero.
    assert!(dbpriv::sdc::risk::record_linkage_rate(&empty, &empty, &[0]).is_err());
    // A single-record dataset microaggregates to itself at k = 1.
    let mut single = Dataset::new(patients::patient_schema());
    single
        .push_row(vec![170.0.into(), 70.0.into(), 130.0.into(), false.into()])
        .unwrap();
    let r = dbpriv::sdc::microaggregation::mdav_microaggregate(&single, &[0, 1], 1).unwrap();
    assert_eq!(r.data, single);
}

#[test]
fn constant_attribute_does_not_break_masking_or_linkage() {
    let mut d = Dataset::new(patients::patient_schema());
    for i in 0..20 {
        d.push_row(vec![
            170.0.into(), // constant QI
            (60.0 + i as f64).into(),
            (125.0 + i as f64).into(),
            (i % 2 == 0).into(),
        ])
        .unwrap();
    }
    let masked = dbpriv::sdc::microaggregation::mdav_microaggregate(&d, &[0, 1], 4).unwrap();
    assert!(dbpriv::anonymity::is_k_anonymous(&masked.data, 4));
    let rate = dbpriv::sdc::risk::record_linkage_rate(&d, &masked.data, &[0, 1]).unwrap();
    assert!(rate.is_finite() && (0.0..=1.0).contains(&rate));
}

#[test]
fn corrupted_pir_answer_corrupts_only_that_retrieval() {
    // The linear scheme is not self-verifying (the client XORs whatever it
    // receives); a corrupted answer must produce a wrong record, which a
    // replicated deployment detects by cross-checking a third server.
    use dbpriv::pir::linear::Query;
    use dbpriv::pir::store::Database;
    let db = Database::new((0..16u8).map(|i| vec![i, i ^ 0xFF]).collect());
    let mut rng = seeded(7);
    let q = Query::build(&mut rng, db.len(), 2, 5);
    let honest_a = db.xor_selected(q.share(0));
    let honest_b = db.xor_selected(q.share(1));
    let record: Vec<u8> = honest_a.iter().zip(&honest_b).map(|(x, y)| x ^ y).collect();
    assert_eq!(record, db.record(5));

    // Server B lies in one byte.
    let mut evil_b = honest_b.clone();
    evil_b[0] ^= 0x40;
    let corrupted: Vec<u8> = honest_a.iter().zip(&evil_b).map(|(x, y)| x ^ y).collect();
    assert_ne!(corrupted, db.record(5));
    // Majority vote over three independent executions exposes the lie.
    let (rec1, _, _) = dbpriv::pir::linear::retrieve(&mut rng, &db, 2, 5);
    let (rec2, _, _) = dbpriv::pir::linear::retrieve(&mut rng, &db, 2, 5);
    assert_eq!(rec1, rec2);
    assert_ne!(corrupted, rec1);
}

#[test]
fn coalition_below_threshold_learns_nothing_about_a_shamir_secret() {
    use dbpriv::mathkit::Fp61;
    use dbpriv::smc::sharing::shamir_share;
    // Two colluding parties of a t=3 sharing: their shares are consistent
    // with EVERY possible secret (we exhibit matching share-pairs for two
    // different secrets from different randomness).
    let mut rng = seeded(11);
    let shares_a = shamir_share(&mut rng, Fp61::new(1111), 3, 5);
    let shares_b = shamir_share(&mut rng, Fp61::new(9999), 3, 5);
    // Distribution check: first shares are unrelated to the secrets' order.
    assert_ne!(shares_a[0].1, shares_b[0].1);
    // And 2 shares never reconstruct (interpolating them as if t = 2).
    let wrong = dbpriv::smc::sharing::shamir_reconstruct(&shares_a[..2]);
    assert_ne!(wrong, Fp61::new(1111));
}

#[test]
fn pram_with_flip_half_is_non_invertible() {
    // flip = 0.5 on a binary attribute destroys all information: the
    // unbiasing estimator must refuse (NaN), not silently lie.
    let est = dbpriv::sdc::pram::unbias_frequency(0.5, 0.5, 2);
    assert!(est.is_nan());
}

#[test]
fn auditor_survives_a_hostile_query_storm() {
    // 60 adversarial queries against a small population: the auditor must
    // never let any single blood pressure become determined.
    use dbpriv::mathkit::Rational;
    use dbpriv::microdata::synth::{patients as synth, PatientConfig};
    use dbpriv::querydb::control::{Auditor, ControlPolicy};
    use dbpriv::querydb::statdb::StatDb;

    let data = synth(&PatientConfig {
        n: 30,
        ..Default::default()
    });
    let mut db = StatDb::new(
        data.clone(),
        ControlPolicy::Audit(Auditor::new("blood_pressure", data.num_rows())),
    );
    let mut answered: Vec<(Vec<usize>, f64)> = Vec::new();
    for t in 0..60 {
        let threshold = 50.0 + (t as f64 * 1.7) % 60.0;
        let attr = if t % 2 == 0 { "weight" } else { "height" };
        let src = format!("SELECT SUM(blood_pressure) FROM t WHERE {attr} > {threshold}");
        let q = dbpriv::querydb::parser::parse(&src).unwrap();
        let eval = dbpriv::querydb::engine::evaluate(&data, &q).unwrap();
        if let Ok(a) = db.query(q) {
            if let Some(v) = a.point() {
                answered.push((eval.query_set, v));
            }
        }
    }
    // Offline, replay all answered equations into a fresh exact system:
    // no unknown may be determined.
    let mut system = dbpriv::mathkit::linalg::QMatrix::new(data.num_rows());
    for (set, v) in &answered {
        let mut row = vec![Rational::zero(); data.num_rows()];
        for &i in set {
            row[i] = Rational::one();
        }
        let rhs = Rational::from_ratio((v * 1000.0).round() as i64, 1000);
        system.absorb(&row, &rhs);
    }
    assert!(
        system.all_determined().is_empty(),
        "auditor leaked: {:?}",
        system.all_determined()
    );
    assert!(!answered.is_empty(), "the auditor must answer safe queries");
}
