//! Fault injection is inert when gated off: running any kernel with a
//! `TDF_FAULTS`-style plan installed at **rate 0** must produce
//! bit-identical results to running with no plan at all, at thread
//! counts 1 and 4 alike. An injection site that consumes caller
//! randomness, reorders a fold, or branches on the plan anywhere but at
//! the firing decision fails here.

use check::prelude::*;
use dbpriv::microdata::rng::seeded;
use dbpriv::microdata::synth::{census, patients, PatientConfig};
use dbpriv::pir::redundant::{retrieve as redundant_retrieve, RetryPolicy, VerifiedDatabase};
use dbpriv::pir::store::Database;
use dbpriv::querydb::control::ControlPolicy;
use dbpriv::querydb::statdb::StatDb;
use dbpriv::smc::secure_sum::{ring_secure_sum, sharing_secure_sum};
use std::sync::Mutex;
use tdf_mathkit::Fp61;

/// Every fault site the workspace defines, each with a nonzero budget but
/// rate 0: the plan is installed and consulted, yet must never fire.
const ZERO_RATE_PLAN: &str = "pir.server_drop=4@0,pir.corrupt_word=4@0,\
                              par.worker_panic=2@0,querydb.deadline=5@0,\
                              smc.corrupt_word=3@0";

/// The fault plan is process-global state: every test in this binary
/// installs one, so they serialise on one lock.
static PLAN_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` once per (plan, thread count) combination and returns the four
/// results in a fixed order: (none,1), (zero-rate,1), (none,4),
/// (zero-rate,4). The plan is uninstalled afterwards.
fn matrix<T>(f: impl Fn() -> T) -> [T; 4] {
    let _guard = PLAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let run = |plan: Option<&str>, threads: usize| {
        faultkit::set_plan(plan.map(|p| faultkit::FaultPlan::parse(p).expect("valid plan")));
        let out = par::with_threads(threads, &f);
        faultkit::set_plan(None);
        out
    };
    [
        run(None, 1),
        run(Some(ZERO_RATE_PLAN), 1),
        run(None, 4),
        run(Some(ZERO_RATE_PLAN), 4),
    ]
}

props! {
    #![cases(12)]

    #[test]
    fn mdav_is_unchanged_by_a_zero_rate_plan(n in 30usize..120, k in 2usize..6, seed in 0u64..30) {
        let d = patients(&PatientConfig { n, seed, ..Default::default() });
        let qi = d.schema().quasi_identifier_indices();
        let [off1, on1, off4, on4] =
            matrix(|| dbpriv::sdc::microaggregation::mdav_microaggregate(&d, &qi, k).unwrap());
        prop_assert_eq!(&on1.data, &off1.data);
        prop_assert_eq!(&on1.group_of, &off1.group_of);
        prop_assert_eq!(on1.sse.to_bits(), off1.sse.to_bits());
        prop_assert_eq!(&on4.data, &off4.data);
        prop_assert_eq!(&on4.group_of, &off4.group_of);
        prop_assert_eq!(on4.sse.to_bits(), off4.sse.to_bits());
    }

    #[test]
    fn mondrian_and_pram_are_unchanged_by_a_zero_rate_plan(n in 30usize..100, k in 2usize..6, seed in 0u64..30) {
        let d = patients(&PatientConfig { n, seed, ..Default::default() });
        let c = census(n / 2, seed);
        let [off1, on1, off4, on4] = matrix(|| {
            let mondrian = dbpriv::anonymity::mondrian_anonymize(&d, k);
            let pram = dbpriv::sdc::pram::pram(&c, 4, 0.3, &mut seeded(seed)).unwrap();
            (mondrian, pram)
        });
        prop_assert_eq!(&on1.0.data, &off1.0.data);
        prop_assert_eq!(&on1.1, &off1.1);
        prop_assert_eq!(&on4.0.data, &off4.0.data);
        prop_assert_eq!(&on4.1, &off4.1);
    }

    #[test]
    fn pir_linear_and_redundant_are_unchanged_by_a_zero_rate_plan(n in 8usize..300, seed in 0u64..30) {
        let records: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8, (i * 3) as u8]).collect();
        let db = Database::new(records.clone());
        let vdb = VerifiedDatabase::new(records);
        let index = n / 2;
        let [off1, on1, off4, on4] = matrix(|| {
            let mut rng = seeded(seed);
            let lin = dbpriv::pir::linear::retrieve(&mut rng, &db, 3, index);
            let robust = redundant_retrieve(&mut rng, &vdb, 6, 1, index, &RetryPolicy::default())
                .expect("no faults can fire at rate 0");
            (lin, robust)
        });
        prop_assert_eq!(&on1, &off1);
        prop_assert_eq!(&on4, &off4);
        prop_assert!(!on1.1.degraded, "rate 0 must not degrade service");
    }

    #[test]
    fn querydb_answers_are_unchanged_by_a_zero_rate_plan(n in 20usize..100, seed in 0u64..30) {
        let d = patients(&PatientConfig { n, seed, ..Default::default() });
        let queries = [
            "SELECT COUNT(*) FROM t WHERE height < 170",
            "SELECT AVG(weight) FROM t WHERE height >= 150",
            "SELECT SUM(weight) FROM t",
        ];
        let [off1, on1, off4, on4] = matrix(|| {
            let mut db = StatDb::new(d.clone(), ControlPolicy::SizeRestriction { min_size: 3 });
            let answers: Vec<_> = queries.iter().map(|q| db.query_str(q).unwrap()).collect();
            (answers, db.refusals())
        });
        prop_assert_eq!(&on1, &off1);
        prop_assert_eq!(&on4, &off4);
    }

    #[test]
    fn smc_secure_sum_is_unchanged_by_a_zero_rate_plan(k in 3usize..9, seed in 0u64..30) {
        let inputs: Vec<Fp61> = (0..k as u64).map(|i| Fp61::new(seed * 31 + i)).collect();
        let [off1, on1, off4, on4] = matrix(|| {
            let (ring_sum, ring_t) = ring_secure_sum(&mut seeded(seed), &inputs);
            let (share_sum, share_t) = sharing_secure_sum(&mut seeded(seed ^ 1), &inputs);
            assert_eq!(ring_t.verify(), Ok(()), "rate 0 must not corrupt");
            assert_eq!(share_t.verify(), Ok(()));
            (ring_sum, ring_t.digest(), share_sum, share_t.digest())
        });
        prop_assert_eq!(&on1, &off1);
        prop_assert_eq!(&on4, &off4);
    }
}
