//! Segmented out-of-core dataset properties: sealed segments + mutable
//! tail must be a perfect stand-in for the monolithic in-memory table —
//! bit-identical through seal/spill/reload round-trips, the streaming
//! query evaluator, and incremental epoch anonymization at every thread
//! count. The divergence incremental MDAV *is* allowed (per-segment group
//! formation) is pinned to its documented bound: masked cells stay inside
//! the original column's value range, and k-anonymity survives
//! concatenation.

use check::prelude::*;
use dbpriv::microdata::synth::{patients, PatientConfig};
use dbpriv::microdata::{Dataset, SegmentedDataset};
use dbpriv::querydb::engine::{evaluate, evaluate_segmented};
use dbpriv::querydb::parser::parse;
use dbpriv::sdc::{mdav_microaggregate, record_linkage_rate, EpochMasker, EpochPublisher};

fn sample(n: usize, seed: u64) -> Dataset {
    patients(&PatientConfig {
        n,
        seed,
        ..Default::default()
    })
}

/// Per-column [min, max] over the non-missing numeric cells.
fn column_range(d: &Dataset, col: usize) -> (f64, f64) {
    let cells = d.f64_cells(col).expect("numeric column");
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for i in 0..d.num_rows() {
        if let Some(v) = cells.get(i) {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    (lo, hi)
}

props! {
    #![cases(24)]

    #[test]
    fn materialize_round_trips_through_segments_and_spills(
        n in 1usize..200, seg_rows in 1usize..64, seed in 0u64..40
    ) {
        let d = sample(n, seed);
        let seg = SegmentedDataset::from_dataset(&d, seg_rows);
        prop_assert_eq!(seg.num_rows(), n);
        // Dataset equality compares float cells by bit pattern, so these
        // are bit-identity checks, not approximate agreement.
        prop_assert_eq!(&seg.materialize().unwrap(), &d);
        // Force every sealed segment through the binary spill format and
        // back; content must survive the disk round trip exactly.
        seg.spill_all();
        prop_assert_eq!(&seg.materialize().unwrap(), &d);
    }

    #[test]
    fn pinned_segments_reload_their_exact_row_range(
        n in 30usize..150, seg_rows in 5usize..40, seed in 0u64..40
    ) {
        let d = sample(n, seed);
        let seg = SegmentedDataset::from_dataset(&d, seg_rows);
        seg.spill_all();
        for idx in 0..seg.num_segments() {
            let meta = seg.segment_meta(idx);
            let part = seg.pin(idx).unwrap();
            let rows: Vec<usize> = (meta.start_row..meta.start_row + meta.rows).collect();
            prop_assert_eq!(&*part, &d.take(&rows));
        }
    }

    #[test]
    fn segmented_queries_match_monolithic_bit_for_bit(
        n in 1usize..150, seg_rows in 1usize..50, seed in 0u64..40
    ) {
        let d = sample(n, seed);
        let seg = SegmentedDataset::from_dataset(&d, seg_rows);
        seg.spill_all();
        for sql in [
            "SELECT COUNT(*) FROM t WHERE height < 170",
            "SELECT SUM(weight) FROM t WHERE height >= 160 AND height <= 185",
            "SELECT AVG(blood_pressure) FROM t WHERE weight > 70",
            "SELECT MIN(height) FROM t WHERE weight < 90",
            "SELECT MAX(weight) FROM t",
        ] {
            let q = parse(sql).unwrap();
            let mono = evaluate(&d, &q).unwrap();
            let segd = evaluate_segmented(&seg, &q).unwrap();
            prop_assert_eq!(&segd.query_set, &mono.query_set);
            match (mono.value, segd.value) {
                (Some(a), Some(b)) => prop_assert_eq!(a.to_bits(), b.to_bits()),
                (a, b) => prop_assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn single_segment_incremental_mdav_equals_batch_mdav(
        n in 30usize..120, k in 2usize..5, seed in 0u64..40
    ) {
        let d = sample(n, seed);
        let qi = d.schema().quasi_identifier_indices();
        // One sealed segment covering the whole table: the incremental
        // publisher degenerates to exactly one batch MDAV run.
        let seg = SegmentedDataset::from_dataset(&d, n);
        let release = EpochPublisher::new(EpochMasker::Mdav { cols: qi.clone(), k })
            .publish(&seg)
            .unwrap();
        let batch = mdav_microaggregate(&d, &qi, k).unwrap();
        prop_assert_eq!(&release.data, &batch.data);
    }

    #[test]
    fn incremental_mdav_diverges_only_within_the_documented_bound(
        n in 60usize..160, seg_rows in 20usize..40, k in 2usize..5, seed in 0u64..40
    ) {
        let d = sample(n, seed);
        let qi = d.schema().quasi_identifier_indices();
        let seg = SegmentedDataset::from_dataset(&d, seg_rows);
        let mut publisher = EpochPublisher::new(EpochMasker::Mdav { cols: qi.clone(), k });
        let release = publisher.publish(&seg).unwrap();
        let batch = mdav_microaggregate(&d, &qi, k).unwrap().data;
        let published = release.data.num_rows();
        prop_assert_eq!(published, seg.sealed_rows());

        // Documented divergence bound: per-segment group formation may
        // pick different groups than the batch run, but every masked cell
        // is a centroid of original values, so both releases stay inside
        // the original column's [min, max] — the divergence between them
        // is bounded by the column spread, never an escape from the data.
        for &c in &qi {
            let (lo, hi) = column_range(&d, c);
            for data in [&release.data, &batch] {
                let cells = data.f64_cells(c).unwrap();
                for i in 0..published.min(data.num_rows()) {
                    if let Some(v) = cells.get(i) {
                        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "cell {v} outside [{lo}, {hi}]");
                    }
                }
            }
        }

        // And the k-anonymity guarantee survives concatenation: groups of
        // >= k within every segment stay >= k in the release, so the
        // intruder's linkage rate keeps the 1/k bound.
        for members in release.data.group_indices_by(&qi).values() {
            prop_assert!(members.len() >= k, "group of {} < k", members.len());
        }
        let rate = record_linkage_rate(&d.take(&(0..published).collect::<Vec<_>>()), &release.data, &qi).unwrap();
        prop_assert!(rate <= 1.0 / k as f64 + 1e-9, "linkage rate {rate}");
    }

    #[test]
    fn incremental_publication_is_bit_identical_across_thread_counts(
        n in 60usize..140, k in 2usize..5, seed in 0u64..30
    ) {
        let d = sample(n, seed);
        let qi = d.schema().quasi_identifier_indices();
        for masker in [
            EpochMasker::Mdav { cols: qi.clone(), k },
            EpochMasker::Mondrian { k },
        ] {
            let run = || {
                let seg = SegmentedDataset::from_dataset(&d, 25);
                seg.spill_all();
                EpochPublisher::new(masker.clone()).publish(&seg).unwrap().data
            };
            let a = par::with_threads(1, run);
            let b = par::with_threads(4, run);
            prop_assert_eq!(&a, &b);
        }
    }
}

/// The acceptance scenario: a dataset at least twice the segment-cache
/// budget streams through MDAV, Mondrian and querydb end-to-end, with
/// real spills and reloads observed via obs counters, and every result
/// bit-identical to the fully in-memory run. Republication after one
/// appended-and-sealed batch re-clusters only the dirty delta.
#[test]
fn out_of_core_end_to_end_matches_in_memory_with_spills_observed() {
    let level_before = obs::level();
    obs::set_level(1);
    obs::reset();

    let d = sample(2000, 0xD15C);
    let qi = d.schema().quasi_identifier_indices();
    let seg = SegmentedDataset::from_dataset(&d, 100); // 20 sealed segments
                                                       // Budget of half the table: at most half the segments fit in memory,
                                                       // so streaming the kernels must spill and reload for real.
    seg.set_cache_budget(d.heap_bytes() / 2);
    // The unconstrained twin never spills — the in-memory reference.
    let resident = SegmentedDataset::from_dataset(&d, 100);

    // MDAV and Mondrian via incremental publication.
    for masker in [
        EpochMasker::Mdav {
            cols: qi.clone(),
            k: 3,
        },
        EpochMasker::Mondrian { k: 3 },
    ] {
        let ooc = EpochPublisher::new(masker.clone()).publish(&seg).unwrap();
        let mem = EpochPublisher::new(masker).publish(&resident).unwrap();
        assert_eq!(ooc.data, mem.data, "out-of-core release drifted");
        assert_eq!(ooc.reclustered, 20);
    }

    // querydb streaming evaluation against the monolithic evaluator.
    for sql in [
        "SELECT COUNT(*) FROM t WHERE height < 172",
        "SELECT AVG(blood_pressure) FROM t WHERE weight >= 60",
        "SELECT SUM(weight) FROM t",
    ] {
        let q = parse(sql).unwrap();
        let mono = evaluate(&d, &q).unwrap();
        let ooc = evaluate_segmented(&seg, &q).unwrap();
        assert_eq!(ooc, mono, "{sql}");
    }

    // Incremental republication: one appended-and-sealed batch dirties
    // exactly one segment; obs shows the other 20 served from cache.
    let mut seg = seg;
    let extra = sample(100, 0xA11);
    for i in 0..extra.num_rows() {
        seg.push_row(extra.row(i)).unwrap();
    }
    seg.seal().unwrap();
    let mut publisher = EpochPublisher::new(EpochMasker::Mdav {
        cols: qi.clone(),
        k: 3,
    });
    let r1 = publisher.publish(&seg).unwrap();
    let r2 = publisher.publish(&seg).unwrap();
    assert_eq!((r1.reclustered, r1.reused), (21, 0));
    assert_eq!((r2.reclustered, r2.reused), (0, 21));
    assert_eq!(r1.data, r2.data);

    let snap = obs::snapshot();
    obs::set_level(level_before);
    assert!(
        snap.counter("segment.spill") >= 1,
        "budgeted run must spill: {} spills",
        snap.counter("segment.spill")
    );
    assert!(
        snap.counter("segment.reload") >= 1,
        "budgeted run must reload: {} reloads",
        snap.counter("segment.reload")
    );
    assert!(snap.counter("segment.seal") >= 21);
    assert!(snap.counter("epoch.segments_reused") >= 21);
}
