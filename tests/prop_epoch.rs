//! Incremental-anonymization battery for the compaction + parallel
//! publication + continuity layer: compaction must preserve the row
//! stream bit-for-bit and never lower the k-anonymity floor, parallel
//! publication must be bit-identical to serial at any thread count,
//! `TDF_RECHURN = 0` must reproduce the verbatim cached-image releases
//! of the plain publisher, and the cross-epoch linkage rate must be
//! monotone non-increasing in the re-churn fraction at fixed seed.

use check::prelude::*;
use dbpriv::microdata::synth::{patients, PatientConfig};
use dbpriv::microdata::{Dataset, SegmentedDataset};
use dbpriv::sdc::{cross_epoch_linkage_rate, EpochMasker, EpochPublisher};

fn sample(n: usize, seed: u64) -> Dataset {
    patients(&PatientConfig {
        n,
        seed,
        ..Default::default()
    })
}

/// Smallest masked-group size over `cols` (0 for an empty release).
fn min_group(d: &Dataset, cols: &[usize]) -> usize {
    d.group_indices_by(cols)
        .values()
        .map(Vec::len)
        .min()
        .unwrap_or(0)
}

props! {
    #![cases(24)]

    #[test]
    fn compaction_preserves_rows_and_the_k_anonymity_floor(
        n in 60usize..160, seg_rows in 2usize..10, k in 2usize..7,
        min_rows in 30usize..80, seed in 0u64..30
    ) {
        let d = sample(n, seed);
        let qi = d.schema().quasi_identifier_indices();
        let mut seg = SegmentedDataset::from_dataset(&d, seg_rows);
        // Mondrian (unlike MDAV) accepts fragments smaller than k, so
        // under-k segments publish under-k groups — the quality loss
        // compaction exists to repair.
        let masker = EpochMasker::Mondrian { k };
        let before = EpochPublisher::new(masker.clone())
            .with_rechurn(0.0)
            .publish(&seg)
            .unwrap();
        let floor_before = min_group(&before.data, &qi);

        let report = seg.compact(min_rows).unwrap();
        prop_assert!(report.segments_after <= report.segments_before);
        // The row stream is untouched: same rows, same order, same bits.
        prop_assert_eq!(&seg.materialize().unwrap(), &d);

        let after = EpochPublisher::new(masker)
            .with_rechurn(0.0)
            .publish(&seg)
            .unwrap();
        prop_assert_eq!(after.data.num_rows(), before.data.num_rows());
        // Merging segments can only grow the group-formation pool, so the
        // k-anonymity floor never drops: once a release reaches k it
        // stays >= k, and a fragment-limited floor can only rise.
        let floor_after = min_group(&after.data, &qi);
        prop_assert!(
            floor_after >= floor_before.min(k),
            "floor fell {floor_before} -> {floor_after} (k = {k})"
        );
    }

    #[test]
    fn parallel_publication_is_bit_identical_to_serial(
        n in 160usize..300, seg_rows in 5usize..20, k in 2usize..5, seed in 0u64..20
    ) {
        let d = sample(n, seed);
        let qi = d.schema().quasi_identifier_indices();
        prop_assert!(n / seg_rows >= 8, "want >= 8 dirty segments");
        for masker in [
            EpochMasker::Mdav { cols: qi.clone(), k },
            EpochMasker::Mondrian { k },
        ] {
            // Epoch 1 masks every segment fresh; epoch 2 re-churns half
            // the cache — both fan out over the executor.
            let run = || {
                let seg = SegmentedDataset::from_dataset(&d, seg_rows);
                let mut p = EpochPublisher::new(masker.clone()).with_rechurn(0.5);
                let r1 = p.publish(&seg).unwrap();
                let r2 = p.publish(&seg).unwrap();
                (r1.data, r2.data)
            };
            // `with_cores` pretends a 4-core host so the pool really
            // engages even on single-core CI.
            let serial = par::with_cores(4, || par::with_threads(1, run));
            let threaded = par::with_cores(4, || par::with_threads(4, run));
            prop_assert_eq!(&serial, &threaded);
        }
    }

    #[test]
    fn zero_rechurn_reproduces_verbatim_cached_releases(
        n in 60usize..180, seg_rows in 10usize..40, k in 2usize..5, seed in 0u64..30
    ) {
        let d = sample(n, seed);
        let qi = d.schema().quasi_identifier_indices();
        let seg = SegmentedDataset::from_dataset(&d, seg_rows);
        let masker = EpochMasker::Mdav { cols: qi, k };
        // The continuity knob at zero is the plain cached publisher: the
        // same images verbatim, epoch after epoch.
        let mut zero = EpochPublisher::new(masker.clone()).with_rechurn(0.0);
        let mut plain = EpochPublisher::new(masker);
        let (z1, p1) = (zero.publish(&seg).unwrap(), plain.publish(&seg).unwrap());
        let (z2, p2) = (zero.publish(&seg).unwrap(), plain.publish(&seg).unwrap());
        prop_assert_eq!(&z1.data, &p1.data);
        prop_assert_eq!(&z2.data, &p2.data);
        // Cached reuse is verbatim: the second epoch repeats the first.
        prop_assert_eq!(&z2.data, &z1.data);
        prop_assert_eq!((z2.reclustered, z2.rechurned), (0, 0));
    }
}

/// The continuity frontier: at fixed seed, raising the re-churn fraction
/// never raises the cross-epoch linkage rate, and full re-churn tracks
/// strictly fewer respondents than verbatim reuse. The churn sets are
/// nested in `f` (fixed pseudorandom ranking), so each step re-masks a
/// superset of the previous step's segments.
#[test]
fn linkage_rate_is_monotone_non_increasing_in_rechurn() {
    let d = sample(240, 0xF20);
    let qi = d.schema().quasi_identifier_indices();
    let seg = SegmentedDataset::from_dataset(&d, 30); // 8 sealed segments
    let masker = EpochMasker::Mdav {
        cols: qi.clone(),
        k: 3,
    };
    let mut prev = f64::INFINITY;
    let mut rates = Vec::new();
    for f in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let mut p = EpochPublisher::new(masker.clone()).with_rechurn(f);
        let a = p.publish(&seg).unwrap();
        let b = p.publish(&seg).unwrap();
        assert_eq!(
            b.rechurned,
            (f * 8.0).floor() as usize,
            "nested churn set at f = {f}"
        );
        let rate = cross_epoch_linkage_rate(&d, &a.data, &b.data, &qi).unwrap();
        eprintln!("rechurn frontier: f = {f:.2} linkage = {rate:.4}");
        assert!(
            rate <= prev + 0.05,
            "linkage rose {prev:.4} -> {rate:.4} at f = {f}"
        );
        prev = rate;
        rates.push(rate);
    }
    // Verbatim reuse sits at the k-anonymity ceiling: every repeated
    // tuple links back to its own group, and the uniform tie split over
    // a k-member group concedes exactly 1/k.
    assert!(
        (rates[0] - 1.0 / 3.0).abs() < 1e-9,
        "verbatim reuse must link at the 1/k ceiling, got {}",
        rates[0]
    );
    assert!(
        rates[4] < rates[0],
        "full re-churn must break some links: {} vs {}",
        rates[4],
        rates[0]
    );
}

/// The acceptance scenario pinned at the default bench seed: eight
/// 4-row fragments publish 4-member groups under Mondrian k = 5 (a
/// fragment cannot reach k); compacting them into one sealed segment
/// strictly raises the minimum group size to >= k and lowers the
/// cross-epoch linkage rate relative to the verbatim cached re-release.
#[test]
fn compacting_eight_fragments_restores_batch_quality_and_cuts_linkage() {
    let d = patients(&PatientConfig {
        n: 32,
        ..Default::default()
    });
    let qi = d.schema().quasi_identifier_indices();
    let mut seg = SegmentedDataset::from_dataset(&d, 4);
    assert_eq!(seg.num_segments(), 8);
    let mut publisher = EpochPublisher::new(EpochMasker::Mondrian { k: 5 }).with_rechurn(0.0);

    let fragmented = publisher.publish(&seg).unwrap();
    let floor_before = min_group(&fragmented.data, &qi);
    assert_eq!(floor_before, 4, "a 4-row fragment is one 4-member group");
    // Without compaction the next epoch reuses every image verbatim.
    let rerelease = publisher.publish(&seg).unwrap();
    assert_eq!(rerelease.data, fragmented.data);
    let linkage_uncompacted =
        cross_epoch_linkage_rate(&d, &fragmented.data, &rerelease.data, &qi).unwrap();

    let report = seg.compact(32).unwrap();
    assert_eq!((report.segments_after, seg.num_segments()), (1, 1));
    let compacted = publisher.publish(&seg).unwrap();
    assert_eq!(
        (compacted.reclustered, compacted.reused),
        (1, 0),
        "all eight cached images retired"
    );
    let floor_after = min_group(&compacted.data, &qi);
    assert!(
        floor_after > floor_before && floor_after >= 5,
        "compaction must strictly raise the floor: {floor_before} -> {floor_after}"
    );
    let linkage_compacted =
        cross_epoch_linkage_rate(&d, &fragmented.data, &compacted.data, &qi).unwrap();
    eprintln!(
        "compaction linkage: uncompacted = {linkage_uncompacted:.4} compacted = {linkage_compacted:.4}"
    );
    assert!(
        linkage_compacted < linkage_uncompacted,
        "re-grouping must break cross-epoch links: {linkage_compacted} vs {linkage_uncompacted}"
    );
}

/// Retraction contract: invalidating a cached image forces exactly that
/// segment through a fresh mask on the next publish (observable as
/// `reclustered = 1` and the `epoch.invalidations` counter), and the
/// deterministic masker rebuilds it bit-identically.
#[test]
fn invalidated_segment_republishes_freshly_masked_and_is_counted() {
    let level_before = obs::level();
    obs::set_level(1);
    obs::reset();

    let d = sample(120, 0x1217);
    let qi = d.schema().quasi_identifier_indices();
    let seg = SegmentedDataset::from_dataset(&d, 40);
    let mut publisher = EpochPublisher::new(EpochMasker::Mdav { cols: qi, k: 3 }).with_rechurn(0.0);
    let r1 = publisher.publish(&seg).unwrap();
    let last = *seg.segment_ids().last().unwrap();
    assert!(publisher.invalidate(last));
    assert!(!publisher.invalidate(last), "image already dropped");
    let r2 = publisher.publish(&seg).unwrap();
    assert_eq!(
        (r2.reclustered, r2.reused),
        (1, 2),
        "exactly the retracted segment is re-masked"
    );
    assert_eq!(r2.data, r1.data, "fresh mask of a sealed segment is stable");

    let snap = obs::snapshot();
    obs::set_level(level_before);
    assert!(
        snap.counter("epoch.invalidations") >= 1,
        "retractions must be observable: {}",
        snap.counter("epoch.invalidations")
    );
    assert!(snap.counter("epoch.segments_reclustered") >= 4);
}
