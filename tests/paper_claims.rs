//! End-to-end assertions of every claim the paper makes, via the `dbpriv`
//! facade — the executable summary of EXPERIMENTS.md.

use dbpriv::anonymity::{is_k_anonymous, k_anonymity_level, p_sensitivity_level};
use dbpriv::core::dimension::Grade;
use dbpriv::core::experiments;
use dbpriv::core::scoring::{scoring_table, Scenario};
use dbpriv::core::technology::TechnologyClass;
use dbpriv::microdata::patients;

#[test]
fn table1_left_dataset_is_spontaneously_3_anonymous() {
    let d1 = patients::dataset1();
    assert_eq!(k_anonymity_level(&d1), Some(3));
    assert!(is_k_anonymous(&d1, 3));
    // Footnote 3: p-sensitivity matters too; Dataset 1 is 2-sensitive.
    assert_eq!(p_sensitivity_level(&d1), Some(2));
}

#[test]
fn table1_right_dataset_isolates_mr_x() {
    let d2 = patients::dataset2();
    assert_eq!(k_anonymity_level(&d2), Some(1));
    let hits =
        d2.matching_indices(|r| r[0].as_f64().unwrap() < 165.0 && r[1].as_f64().unwrap() > 105.0);
    assert_eq!(hits.len(), 1);
    assert_eq!(d2.value(hits[0], 2).as_f64(), Some(146.0));
}

#[test]
fn sections_2_to_4_independence_experiments_all_match() {
    for outcome in experiments::all_experiments().unwrap() {
        assert!(outcome.matches_paper, "{}: {:?}", outcome.id, outcome.facts);
    }
}

#[test]
fn table2_structural_claims_hold_empirically() {
    let rows = scoring_table(&Scenario {
        n: 200,
        pir_trials: 400,
        ..Default::default()
    })
    .unwrap();
    let get = |t: TechnologyClass| rows.iter().find(|r| r.technology == t).unwrap();

    // PIR: high user privacy, none for respondents/owners.
    let pir = get(TechnologyClass::Pir);
    assert_eq!(pir.measured[2], Grade::High);
    assert_eq!(pir.measured[0], Grade::None);
    assert_eq!(pir.measured[1], Grade::None);

    // Crypto PPDM: the owner-privacy champion, zero user privacy.
    let crypto = get(TechnologyClass::CryptoPpdm);
    assert_eq!(crypto.measured[0], Grade::High);
    assert_eq!(crypto.measured[1], Grade::High);
    assert_eq!(crypto.measured[2], Grade::None);

    // Non-PIR rows all have user grade none; PIR rows all above none.
    for r in &rows {
        if r.technology.has_pir() {
            assert!(r.measured[2] > Grade::None, "{}", r.technology);
        } else {
            assert_eq!(r.measured[2], Grade::None, "{}", r.technology);
        }
    }

    // §5: generic PPDM composes with PIR better than use-specific.
    assert!(
        get(TechnologyClass::GenericPpdmPlusPir).scores.user
            > get(TechnologyClass::UseSpecificPpdmPlusPir).scores.user
    );
}

#[test]
fn section6_recipe_satisfies_all_three_dimensions() {
    use dbpriv::core::metrics::{owner_score, respondent_score};
    use dbpriv::core::pipeline::{DeploymentConfig, ThreeDimensionalDb};
    use dbpriv::microdata::rng::seeded;
    use dbpriv::microdata::synth::{patients as synth, PatientConfig};

    let data = synth(&PatientConfig {
        n: 200,
        ..Default::default()
    });
    let numeric = data.schema().numeric_indices();
    let mut db = ThreeDimensionalDb::deploy(
        data.clone(),
        DeploymentConfig {
            k: Some(10),
            pir: true,
        },
    )
    .unwrap();

    // Respondent: the served release is 10-anonymous.
    assert!(is_k_anonymous(db.released(), 10));
    assert!(respondent_score(&data, db.released()).unwrap() > 0.85);
    // Owner: quasi-identifiers are aggregated (partial protection — the
    // recipe trades owner exposure of confidential values for utility).
    assert!(owner_score(&data, db.released(), &numeric, 0.1).unwrap() > 0.2);
    // User: a query leaves no plaintext trace.
    let q = dbpriv::querydb::parser::parse("SELECT COUNT(*) FROM t WHERE weight > 100").unwrap();
    let mut rng = seeded(3);
    db.private_query(&mut rng, &q).unwrap();
    assert!(db.plain_access_log().is_empty());
}
