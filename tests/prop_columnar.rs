//! Columnar-storage properties: the typed, dictionary-encoded column store
//! behind `Dataset` must be a perfect stand-in for a row-major table —
//! identical content through serialization round-trips, the compat row
//! materializer, and every seeded kernel at every thread count.

use check::prelude::*;
use dbpriv::microdata::csv::{from_csv, to_csv};
use dbpriv::microdata::rng::seeded;
use dbpriv::microdata::ser::{dataset_from_tsv, dataset_to_tsv};
use dbpriv::microdata::synth::{census, patients, PatientConfig};
use dbpriv::microdata::{Dataset, Value};

props! {
    #![cases(24)]

    #[test]
    fn csv_round_trip_preserves_columnar_content(n in 1usize..80, seed in 0u64..50) {
        // Mixed Integer / Nominal / Ordinal / Continuous columns: the
        // round trip exercises dictionary re-interning from scratch.
        let d = census(n, seed);
        let back = from_csv(d.schema().clone(), &to_csv(&d)).unwrap();
        prop_assert_eq!(&back, &d);
        for i in 0..d.num_rows() {
            prop_assert_eq!(back.row(i), d.row(i));
        }
    }

    #[test]
    fn tsv_round_trip_preserves_columnar_content(n in 1usize..80, seed in 0u64..50) {
        let d = census(n, seed);
        let back = dataset_from_tsv(&dataset_to_tsv(&d)).unwrap();
        prop_assert_eq!(&back, &d);
        for i in 0..d.num_rows() {
            prop_assert_eq!(back.row(i), d.row(i));
        }
    }

    #[test]
    fn row_materializer_round_trips_through_with_rows(n in 1usize..60, seed in 0u64..50) {
        // Columnar → rows → columnar: rebuilding from materialized rows
        // reproduces the dataset exactly (dictionary order may differ;
        // equality is representation-independent by design).
        let d = census(n, seed);
        let rows: Vec<Vec<Value>> = (0..d.num_rows()).map(|i| d.row(i)).collect();
        let rebuilt = Dataset::with_rows(d.schema().clone(), rows).unwrap();
        prop_assert_eq!(&rebuilt, &d);
        for i in 0..d.num_rows() {
            for c in 0..d.num_columns() {
                prop_assert_eq!(rebuilt.value(i, c), d.value(i, c));
            }
        }
    }

    #[test]
    fn mdav_is_bit_identical_across_thread_counts(n in 40usize..160, k in 2usize..6, seed in 0u64..30) {
        let d = patients(&PatientConfig { n, seed, ..Default::default() });
        let qi = d.schema().quasi_identifier_indices();
        let run = || dbpriv::sdc::microaggregation::mdav_microaggregate(&d, &qi, k).unwrap();
        let (a, b) = (par::with_threads(1, run), par::with_threads(4, run));
        // Dataset equality compares float cells by bit pattern, so this is
        // bit-identity, not approximate agreement.
        prop_assert_eq!(&a.data, &b.data);
        prop_assert_eq!(a.group_of, b.group_of);
        prop_assert_eq!(a.sse.to_bits(), b.sse.to_bits());
    }

    #[test]
    fn mondrian_is_bit_identical_across_thread_counts(n in 40usize..160, k in 2usize..6, seed in 0u64..30) {
        let d = patients(&PatientConfig { n, seed, ..Default::default() });
        let run = || dbpriv::anonymity::mondrian_anonymize(&d, k);
        let (a, b) = (par::with_threads(1, run), par::with_threads(4, run));
        prop_assert_eq!(&a.data, &b.data);
        prop_assert_eq!(a.partition_of, b.partition_of);
    }

    #[test]
    fn pram_is_deterministic_and_domain_preserving(n in 10usize..80, seed in 0u64..30, flip_pct in 0u32..100) {
        // PRAM consumes the RNG per non-missing row in row order; under a
        // fixed seed the coded (dictionary) implementation must replay the
        // exact same draws every run, and never invent a category.
        let d = census(n, seed);
        let flip = f64::from(flip_pct) / 100.0;
        let col = 4; // "disease", Nominal
        let a = dbpriv::sdc::pram::pram(&d, col, flip, &mut seeded(seed)).unwrap();
        let b = dbpriv::sdc::pram::pram(&d, col, flip, &mut seeded(seed)).unwrap();
        prop_assert_eq!(&a, &b);
        let domain: Vec<Value> = (0..d.num_rows()).map(|i| d.value(i, col)).collect();
        for i in 0..a.num_rows() {
            prop_assert!(domain.contains(&a.value(i, col)));
        }
        // Missingness pattern and every other column survive untouched.
        for i in 0..a.num_rows() {
            prop_assert_eq!(a.value(i, col).is_missing(), d.value(i, col).is_missing());
            for c in 0..d.num_columns() {
                if c != col {
                    prop_assert_eq!(a.value(i, c), d.value(i, c));
                }
            }
        }
    }

    #[test]
    fn take_then_row_equals_row_of_source(n in 2usize..60, seed in 0u64..30) {
        // The columnar gather used by filter/partition/suppression must
        // agree cell-for-cell with row-by-row copying.
        let d = census(n, seed);
        let idx: Vec<usize> = (0..d.num_rows()).rev().step_by(2).collect();
        let gathered = d.take(&idx);
        prop_assert_eq!(gathered.num_rows(), idx.len());
        for (r, &i) in idx.iter().enumerate() {
            prop_assert_eq!(gathered.row(r), d.row(i));
        }
    }
}
