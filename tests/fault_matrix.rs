//! CI fault-matrix smoke: exercises the `TDF_FAULTS` environment path.
//!
//! Every other fault test installs its plan programmatically via
//! `faultkit::set_plan`, which bypasses environment parsing entirely. This
//! binary never touches the plan: whatever `ci/check.sh` exports in
//! `TDF_FAULTS` is what runs, so the env-var grammar, the lazy one-time
//! init and the `TDF_FAULT_SEED` override get end-to-end coverage. Every
//! assertion is an invariant that must hold under *any* plan — degraded
//! or refused outcomes are fine, wrong answers and dead pools are not.

use rngkit::SeedableRng;
use tdf_microdata::synth::{patients, PatientConfig};
use tdf_pir::redundant::{retrieve, RetryPolicy, VerifiedDatabase};
use tdf_querydb::control::ControlPolicy;
use tdf_querydb::statdb::StatDb;
use tdf_smc::secure_sum::ring_secure_sum;

/// Injected worker panics are expected noise in a fault-matrix run; keep
/// the default hook for anything else.
fn silence_injected_panics() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| info.payload().downcast_ref::<String>().cloned())
            .unwrap_or_default();
        if !(msg.contains("injected") || msg.contains("tdf-par:")) {
            default(info);
        }
    }));
}

#[test]
fn ambient_plan_matches_the_environment() {
    // No set_plan call anywhere in this binary, so enabled() reflects the
    // lazy env init and nothing else.
    assert_eq!(
        faultkit::enabled(),
        std::env::var("TDF_FAULTS").is_ok(),
        "env-installed plans must be visible through the faultkit API"
    );
}

#[test]
fn segment_spill_invariants_hold_under_the_ambient_plan() {
    silence_injected_panics();
    let d = patients(&PatientConfig {
        n: 120,
        seed: 0xCE,
        ..Default::default()
    });
    let seg = tdf_microdata::SegmentedDataset::from_dataset(&d, 30);
    // Under any plan — crashed spills, corrupted reloads — streaming the
    // table back is either exact or a typed error, never wrong rows; a
    // crashed spill fails closed with the segment still resident.
    let _ = seg.spill_all();
    if let Ok(m) = seg.materialize() {
        assert_eq!(m, d, "never wrong rows");
    }
    // Every pin that succeeds must return its exact row range.
    for idx in 0..seg.num_segments() {
        if let Ok(part) = seg.pin(idx) {
            let meta = seg.segment_meta(idx);
            let rows: Vec<usize> = (meta.start_row..meta.start_row + meta.rows).collect();
            assert_eq!(*part, d.take(&rows), "segment {idx}");
        }
    }
}

#[test]
fn compaction_and_eviction_invariants_hold_under_the_ambient_plan() {
    silence_injected_panics();
    let d = patients(&PatientConfig {
        n: 160,
        seed: 0xC0,
        ..Default::default()
    });
    let mut seg = tdf_microdata::SegmentedDataset::from_dataset(&d, 20);
    let before = seg.num_segments();
    // Compaction is atomic: it either merges (fewer segments, same rows)
    // or fails closed with the old segments untouched and queryable.
    match seg.compact(60) {
        Ok(report) => {
            assert!(report.segments_after <= before);
            assert_eq!(report.segments_before, before);
        }
        Err(_) => assert_eq!(
            seg.num_segments(),
            before,
            "failed compaction mutates nothing"
        ),
    }
    if let Ok(m) = seg.materialize() {
        assert_eq!(m, d, "never wrong rows");
    }
    // Eviction under a shrinking budget may abort (fail open: cache stays
    // over budget) but must never drop or corrupt a segment.
    for budget in [d.heap_bytes() / 2, d.heap_bytes() / 8, 1] {
        seg.set_cache_budget(budget);
    }
    for idx in 0..seg.num_segments() {
        if let Ok(part) = seg.pin(idx) {
            let meta = seg.segment_meta(idx);
            let rows: Vec<usize> = (meta.start_row..meta.start_row + meta.rows).collect();
            assert_eq!(*part, d.take(&rows), "segment {idx}");
        }
    }
}

#[test]
fn disguise_invariants_hold_under_the_ambient_plan() {
    silence_injected_panics();
    use tdf_disguise::{fingerprint, owned_patients, DisguiseEngine, DisguisePolicy, Error};
    let cfg = PatientConfig {
        n: 96,
        seed: 0xD1,
        ..Default::default()
    };
    let base = owned_patients(&cfg, 6);
    let fp_original = fingerprint(&base);
    let wal = std::env::temp_dir().join(format!(
        "tdf_fault_matrix_disguise_{}.wal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&wal);
    // Crash-stop model: an exhausted retry budget poisons the engine;
    // re-opening the WAL runs recovery, which replays every committed
    // transaction and discards torn tails. Recovery itself runs through
    // the fault sites, so it too may crash and be retried.
    let reopen = |base: &tdf_microdata::Dataset| -> DisguiseEngine {
        for _ in 0..50 {
            if let Ok((engine, _)) =
                DisguiseEngine::open(&wal, base.clone(), DisguisePolicy::patients_default(), 0xD1)
            {
                return engine;
            }
        }
        panic!("recovery never succeeded under the ambient plan");
    };
    let mut engine = reopen(&base);
    // Drive every owner to disguised, restarting on any crash: a
    // committed transaction must replay to completion, an uncommitted
    // one must vanish without a trace — so the loop always converges.
    for user in 1..=6u64 {
        loop {
            match engine.disguise(user) {
                Ok(_) | Err(Error::AlreadyDisguised(_)) => break,
                Err(Error::Crashed(_)) | Err(Error::Poisoned) => engine = reopen(&base),
                Err(other) => panic!("unexpected disguise outcome {other:?}"),
            }
        }
    }
    for user in 1..=6u64 {
        assert!(engine.is_disguised(user), "user {user} must end disguised");
    }
    assert_ne!(
        engine.fingerprint(),
        fp_original,
        "disguised release must differ from the original"
    );
    // And back: restore every owner the same way. The release must come
    // back bit-identical to the original — all-or-nothing transactions
    // under any plan, never a half-restored ledger.
    for user in 1..=6u64 {
        loop {
            match engine.restore(user) {
                Ok(_) | Err(Error::NotDisguised(_)) => break,
                Err(Error::Crashed(_)) | Err(Error::Poisoned) => engine = reopen(&base),
                Err(other) => panic!("unexpected restore outcome {other:?}"),
            }
        }
    }
    assert_eq!(
        engine.fingerprint(),
        fp_original,
        "restore \u{2218} disguise must be the identity under any plan"
    );
    let _ = std::fs::remove_file(&wal);
}

#[test]
fn pipeline_invariants_hold_under_the_ambient_plan() {
    silence_injected_panics();

    // Redundant PIR: a fault within tolerance is masked, beyond tolerance
    // it is a typed error — never a wrong record.
    let records: Vec<Vec<u8>> = (0..128usize).map(|i| vec![i as u8; 8]).collect();
    let vdb = VerifiedDatabase::new(records.clone());
    let policy = RetryPolicy::default();
    let mut rng = rngkit::rngs::StdRng::seed_from_u64(0xCE);
    for k in 0..32usize {
        let index = (k * 13) % records.len();
        if let Ok(out) = retrieve(&mut rng, &vdb, 6, 1, index, &policy) {
            assert_eq!(out.record, records[index], "never a wrong record");
        }
    }

    // Query DB: an injected deadline degrades to an explicit refusal,
    // never to an engine error or a partial answer.
    let d = patients(&PatientConfig {
        n: 60,
        seed: 0xCE,
        ..Default::default()
    });
    let mut db = StatDb::new(d, ControlPolicy::SizeRestriction { min_size: 2 });
    for _ in 0..8 {
        db.query_str("SELECT AVG(weight) FROM t WHERE height >= 150")
            .expect("refusal, not error");
    }

    // Secure sum: transcript verification must return a verdict (clean or
    // a typed corruption report) under any plan.
    let inputs: Vec<tdf_mathkit::Fp61> = (0..5u64).map(tdf_mathkit::Fp61::new).collect();
    let mut rng = rngkit::rngs::StdRng::seed_from_u64(0x5C);
    let (_, transcript) = ring_secure_sum(&mut rng, &inputs);
    let _ = transcript.verify();

    // Parallel map: a panicked region surfaces as a typed error and the
    // pool survives to serve later regions; a clean region is exact.
    let mut served_clean = false;
    for _ in 0..50 {
        if let Ok(v) = par::try_par_map_range(4000, |i| i as u64 * 3) {
            assert_eq!(v.len(), 4000);
            assert_eq!(v[1234], 3702);
            served_clean = true;
            break;
        }
    }
    assert!(
        served_clean,
        "pool must recover and eventually serve a clean region"
    );
}
