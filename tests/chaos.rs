//! Chaos sweep: the full F1-style pipeline runs under 100 randomly drawn
//! fault plans without ever aborting the process, returning a wrong PIR
//! record, or leaving the parallel pool unusable. After every chaotic
//! iteration the same pipeline reruns with no plan installed and must
//! reproduce the fault-free reference bit-for-bit — injected worker
//! deaths, dropped servers, corrupted words and query deadlines leave no
//! residue behind.

use dbpriv::microdata::rng::seeded;
use dbpriv::microdata::synth::{patients, PatientConfig};
use dbpriv::pir::redundant::{retrieve, RetryPolicy, VerifiedDatabase};
use dbpriv::querydb::control::ControlPolicy;
use dbpriv::querydb::statdb::StatDb;
use dbpriv::smc::secure_sum::ring_secure_sum;
use rngkit::Rng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use tdf_mathkit::Fp61;

const QUERIES: [&str; 3] = [
    "SELECT COUNT(*) FROM t WHERE height < 170",
    "SELECT AVG(weight) FROM t WHERE height >= 150",
    "SELECT SUM(weight) FROM t",
];

/// Draws a random fault plan: each site independently present or absent,
/// with a random budget and a rate from {0, 0.05, 0.25, 1}.
fn random_plan(seed: u64) -> String {
    let mut rng = seeded(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut parts = Vec::new();
    for site in [
        "pir.server_drop",
        "pir.corrupt_word",
        "par.worker_panic",
        "querydb.deadline",
        "smc.corrupt_word",
    ] {
        if !rng.gen_bool(0.6) {
            continue;
        }
        let value: u64 = if site == "querydb.deadline" {
            rng.gen_range(1u64..200) // a row-scan allowance, not a budget
        } else {
            rng.gen_range(0u64..6) // 0 = unbounded firing budget
        };
        let rate = [0.0, 0.05, 0.25, 1.0][rng.gen_range(0usize..4)];
        parts.push(format!("{site}={value}@{rate}"));
    }
    parts.join(",")
}

/// One pipeline pass at 4 threads. Invariant violations (a wrong record
/// where a typed error was required) are pushed into `violations`;
/// fault-induced refusals, typed errors and panics are expected outcomes.
fn pipeline(seed: u64, violations: &mut Vec<String>) {
    par::with_threads(4, || {
        let d = patients(&PatientConfig {
            n: 40,
            seed,
            ..Default::default()
        });
        let qi = d.schema().quasi_identifier_indices();
        let _ = dbpriv::sdc::microaggregation::mdav_microaggregate(&d, &qi, 3).unwrap();

        let mut db = StatDb::new(d, ControlPolicy::SizeRestriction { min_size: 2 });
        for q in QUERIES {
            // Deadline exhaustion degrades to Answer::Refused, never Err.
            db.query_str(q).expect("refusal, not error");
        }

        let records: Vec<Vec<u8>> = (0..64u8).map(|i| vec![i, i.wrapping_mul(7)]).collect();
        let vdb = VerifiedDatabase::new(records.clone());
        match retrieve(&mut seeded(seed), &vdb, 6, 1, 13, &RetryPolicy::default()) {
            // Degraded or not, a returned record must be the right one.
            Ok(r) if r.record != records[13] => {
                violations.push(format!(
                    "seed {seed}: redundant PIR returned a wrong record"
                ));
            }
            Ok(_) => {}
            Err(_) => {} // explicit typed failure beyond tolerance: allowed
        }

        let inputs: Vec<Fp61> = (0..5).map(|i| Fp61::new(seed + i)).collect();
        let (_, transcript) = ring_secure_sum(&mut seeded(seed ^ 0xABCD), &inputs);
        let _ = transcript.verify(); // Err = corruption detected: allowed

        match par::try_par_map_range(3000, |i| i as u64 * 2) {
            Ok(v) => {
                if v[1500] != 3000 {
                    violations.push(format!("seed {seed}: par region computed a wrong value"));
                }
            }
            Err(par::ParError::WorkerPanicked | par::ParError::RegionPanicked { .. }) => {}
        }
    });
}

/// The fault-free pipeline, reduced to a comparable digest.
fn clean_digest(seed: u64) -> (Vec<dbpriv::querydb::Answer>, Vec<u8>, u64, Vec<u64>) {
    par::with_threads(4, || {
        let d = patients(&PatientConfig {
            n: 40,
            seed,
            ..Default::default()
        });
        let mut db = StatDb::new(d, ControlPolicy::SizeRestriction { min_size: 2 });
        let answers: Vec<_> = QUERIES.map(|q| db.query_str(q).unwrap()).into();
        let records: Vec<Vec<u8>> = (0..64u8).map(|i| vec![i, i.wrapping_mul(7)]).collect();
        let vdb = VerifiedDatabase::new(records);
        let robust = retrieve(&mut seeded(seed), &vdb, 6, 1, 13, &RetryPolicy::default())
            .expect("fault-free retrieval succeeds");
        let inputs: Vec<Fp61> = (0..5).map(|i| Fp61::new(seed + i)).collect();
        let (_, transcript) = ring_secure_sum(&mut seeded(seed ^ 0xABCD), &inputs);
        transcript.verify().expect("fault-free transcript verifies");
        let mapped = par::par_map_range(3000, |i| i as u64 * 2);
        (answers, robust.record, transcript.digest(), mapped)
    })
}

#[test]
fn one_hundred_random_fault_plans_never_abort_or_corrupt() {
    // Injected panics are expected here by the hundreds; keep the default
    // hook's backtraces for *unexpected* panics only.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let message = info
            .payload()
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| info.payload().downcast_ref::<String>().map(String::as_str));
        if let Some(m) = message {
            if m.contains("injected") || m.contains("tdf-par:") {
                return;
            }
        }
        default_hook(info);
    }));

    const REFERENCE_SEED: u64 = 7;
    faultkit::set_plan(None);
    let reference = clean_digest(REFERENCE_SEED);

    let mut violations = Vec::new();
    let mut plans_that_fired = 0usize;
    let mut panicked_iterations = 0usize;
    for seed in 0..100u64 {
        let text = random_plan(seed);
        faultkit::set_plan(Some(
            faultkit::FaultPlan::parse_with_seed(&text, seed).expect("generated plan parses"),
        ));
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut local = Vec::new();
            pipeline(seed, &mut local);
            local
        }));
        let fired = [
            "pir.server_drop",
            "pir.corrupt_word",
            "par.worker_panic",
            "querydb.deadline",
            "smc.corrupt_word",
        ]
        .iter()
        .map(|s| faultkit::fired(s))
        .sum::<u64>();
        faultkit::set_plan(None);
        if fired > 0 {
            plans_that_fired += 1;
        }
        match outcome {
            Ok(local) => violations.extend(local),
            // A panic that escaped to the pipeline boundary (e.g. through
            // a plain par entry point) is survivable by design…
            Err(_) => panicked_iterations += 1,
        }
        // …but the very next fault-free run must be pristine: the pool
        // respawned its workers and no plan residue remains.
        let after = clean_digest(REFERENCE_SEED);
        assert_eq!(
            after, reference,
            "seed {seed} (plan `{text}`) left residue behind"
        );
    }

    assert!(violations.is_empty(), "invariants broken:\n{violations:#?}");
    assert!(
        plans_that_fired >= 10,
        "sanity: only {plans_that_fired}/100 plans fired any fault"
    );
    // With par.worker_panic drawn at rate 1 in some plans, at least one
    // iteration must have exercised the panic path end to end.
    assert!(panicked_iterations > 0 || plans_that_fired > 0);
}
