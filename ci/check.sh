#!/usr/bin/env bash
# The offline CI gate. Everything here must pass with NO network and an
# empty cargo registry: the workspace is hermetic (in-tree path
# dependencies only), and this script is the enforcement point.
#
# Usage: ci/check.sh [--quick]
#   --quick   skip the release build and the bench smoke run
#
# Environment:
#   CARGO       cargo binary (default: cargo)
set -euo pipefail

cd "$(dirname "$0")/.."
CARGO="${CARGO:-cargo}"
QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

step() { printf '\n==> %s\n' "$*"; }

step "hermetic manifests (no registry dependencies)"
# Fast shell-level mirror of tests/hermetic_guard.rs: inside any
# *dependencies* table, every entry must be a path or workspace dep.
bad=$(awk '
  /^\[/ { dep = ($0 ~ /dependencies\]$/); next }
  dep && /=/ && !/^[[:space:]]*#/ && !/path[[:space:]]*=/ && !/workspace[[:space:]]*=[[:space:]]*true/ {
    print FILENAME ":" FNR ": " $0
  }
' Cargo.toml crates/*/Cargo.toml)
if [[ -n "$bad" ]]; then
  echo "registry (non-path) dependencies are banned:" >&2
  echo "$bad" >&2
  exit 1
fi
echo "ok"

step "row-materializer budget (columnar storage must stay hot)"
# `Dataset::row` / `Dataset::rows` are the compatibility shim over the
# columnar store — fine for CSV/TSV ser, generators and report glue,
# banned from growing back into kernels. The budget is the audited
# call-site count at the time of the columnar refactor; if you need a
# new site, prefer a ColumnView / typed-cells accessor, or consciously
# raise the budget here with a justification.
ROW_BUDGET=28
row_sites=$(grep -rn '\.rows()\|\.row(' crates/*/src --include='*.rs' \
  | grep -v 'crates/microdata/src/dataset.rs' | grep -cv '^[[:space:]]*//' || true)
if [[ "$row_sites" -gt "$ROW_BUDGET" ]]; then
  echo "row-materializer call sites grew: $row_sites > budget $ROW_BUDGET" >&2
  grep -rn '\.rows()\|\.row(' crates/*/src --include='*.rs' \
    | grep -v 'crates/microdata/src/dataset.rs' | grep -v '^[[:space:]]*//' >&2
  exit 1
fi
echo "ok ($row_sites sites, budget $ROW_BUDGET)"

step "cargo fmt --check"
"$CARGO" fmt --all --check

step "cargo clippy (offline, -D warnings)"
"$CARGO" clippy --workspace --all-targets --offline -- -D warnings

if [[ "$QUICK" -eq 0 ]]; then
  step "cargo build --release --offline"
  "$CARGO" build --release --offline
fi

step "cargo test --offline (TDF_THREADS=1)"
TDF_THREADS=1 "$CARGO" test --workspace -q --offline

step "cargo test --offline (TDF_THREADS=4, TDF_OBS=2)"
# Full observability on: every kernel's instrumentation runs under the
# whole suite, and tests/prop_obs_inert.rs proves it changes no answer.
TDF_THREADS=4 TDF_OBS=2 "$CARGO" test --workspace -q --offline

step "fault matrix (TDF_FAULTS env path; see tests/fault_matrix.rs)"
# The two runs above are the no-fault column. Here the plan arrives via
# the environment — the path set_plan-based tests bypass. A zero-rate
# plan over every site must leave the whole suite green (inertness,
# end-to-end through the env parser), and live pir / par plans must
# degrade the matrix pipeline to masked faults, refusals and typed
# errors — never wrong answers.
ZERO_RATE="pir.server_drop=4@0,pir.corrupt_word=4@0,par.worker_panic=2@0,querydb.deadline=5@0,smc.corrupt_word=3@0"
PIR_FAULTS="pir.server_drop=0@0.3,pir.corrupt_word=0@0.2"
PAR_FAULTS="par.worker_panic=0@0.05"
TDF_FAULTS="$ZERO_RATE" TDF_THREADS=4 "$CARGO" test --workspace -q --offline
for threads in 1 4; do
  TDF_FAULTS="$PIR_FAULTS" TDF_THREADS="$threads" \
    "$CARGO" test -q --offline --test fault_matrix
  TDF_FAULTS="$PAR_FAULTS" TDF_THREADS="$threads" \
    "$CARGO" test -q --offline --test fault_matrix
done
echo "ok"

if [[ "$QUICK" -eq 0 ]]; then
  step "bench smoke run (tiny sample counts; validates BENCH_*.json)"
  rm -f crates/bench/BENCH_*.json
  TDF_BENCH_SAMPLES=3 TDF_BENCH_SAMPLE_MS=2 TDF_BENCH_WARMUP_MS=5 \
    "$CARGO" bench --offline -p tdf-bench >/dev/null
  for suite in substrates ablations experiments par columnar obs faults; do
    json="crates/bench/BENCH_${suite}.json"
    [[ -s "$json" ]] || { echo "missing $json" >&2; exit 1; }
    grep -q '"median_ns"' "$json" || { echo "$json lacks median_ns" >&2; exit 1; }
    grep -q '"p95_ns"' "$json" || { echo "$json lacks p95_ns" >&2; exit 1; }
  done
  # The obs suite runs each workload at TDF_OBS=1/2 through bench_with_obs,
  # which embeds the counter snapshot alongside the timings.
  grep -q '"counters"' crates/bench/BENCH_obs.json \
    || { echo "BENCH_obs.json lacks embedded counters" >&2; exit 1; }
  rm -f crates/bench/BENCH_*.json
  echo "ok"

  step "deterministic obs snapshot matches the golden file"
  # Counter totals for a fixed F1 sweep are part of the contract: any
  # accounting change must consciously regenerate ci/golden/obs_f1.jsonl
  # (see crates/bench/src/bin/obs_snapshot.rs for the command).
  "$CARGO" run --release --offline -q -p tdf-bench --bin obs_snapshot \
    | diff - ci/golden/obs_f1.jsonl \
    || { echo "obs snapshot drifted from ci/golden/obs_f1.jsonl" >&2; exit 1; }
  echo "ok"

  step "deterministic fault snapshot matches the golden file"
  # Injection decisions are pure functions of (plan seed, site, draw
  # index), so the fault report for a pinned plan is bit-stable. A drift
  # means injection points moved, fired differently or stopped being
  # counted; regenerate ci/golden/faults_f1.jsonl consciously (see
  # crates/bench/src/bin/fault_snapshot.rs for the command).
  "$CARGO" run --release --offline -q -p tdf-bench --bin fault_snapshot \
    | diff - ci/golden/faults_f1.jsonl \
    || { echo "fault snapshot drifted from ci/golden/faults_f1.jsonl" >&2; exit 1; }
  echo "ok"
fi

step "all checks passed"
