#!/usr/bin/env bash
# The offline CI gate. Everything here must pass with NO network and an
# empty cargo registry: the workspace is hermetic (in-tree path
# dependencies only), and this script is the enforcement point.
#
# Usage: ci/check.sh [--quick]
#   --quick   skip the release build, the bench smoke run, the golden
#             diffs and the serve/scaling gates
#
# Environment:
#   CARGO       cargo binary (default: cargo)
set -euo pipefail

cd "$(dirname "$0")/.."
CARGO="${CARGO:-cargo}"

usage() {
  cat <<'EOF'
Usage: ci/check.sh [--quick]
  --quick   skip the release build, the bench smoke run, the golden
            diffs and the serve/scaling gates
EOF
}

QUICK=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) QUICK=1 ;;
    -h | --help)
      usage
      exit 0
      ;;
    *)
      echo "ci/check.sh: unknown option '$1'" >&2
      usage >&2
      exit 2
      ;;
  esac
  shift
done

# Failure artefacts (golden-diff outputs, regenerated snapshots) land
# here; the workflow uploads the directory when a run fails. Absolute,
# because `cargo bench` runs bench binaries with the *package* directory
# as cwd, so a relative TDF_RESULTS_DIR would land the artefacts under
# crates/bench/target instead.
ARTIFACTS="$PWD/target/ci-artifacts"
rm -rf "$ARTIFACTS"
mkdir -p "$ARTIFACTS"

step() { printf '\n==> %s\n' "$*"; }

step "hermetic manifests (no registry dependencies)"
# Fast shell-level mirror of tests/hermetic_guard.rs: inside any
# *dependencies* table, every entry must be a path or workspace dep.
bad=$(awk '
  /^\[/ { dep = ($0 ~ /dependencies\]$/); next }
  dep && /=/ && !/^[[:space:]]*#/ && !/path[[:space:]]*=/ && !/workspace[[:space:]]*=[[:space:]]*true/ {
    print FILENAME ":" FNR ": " $0
  }
' Cargo.toml crates/*/Cargo.toml)
if [[ -n "$bad" ]]; then
  echo "registry (non-path) dependencies are banned:" >&2
  echo "$bad" >&2
  exit 1
fi
echo "ok"

step "row-materializer budget (columnar storage must stay hot)"
# `Dataset::row` / `Dataset::rows` are the compatibility shim over the
# columnar store — fine for CSV/TSV ser, generators and report glue,
# banned from growing back into kernels. The budget is the audited
# call-site count at the time of the columnar refactor; if you need a
# new site, prefer a ColumnView / typed-cells accessor, or consciously
# raise the budget here with a justification.
# 27 -> 30: three segment-compaction unit-test fixtures feed the mutable
# tail row-by-row (`push_row(d.row(i))`) — the only API that exercises
# the tail path; no kernel code materializes rows.
ROW_BUDGET=30
row_sites=$(grep -rn '\.rows()\|\.row(' crates/*/src --include='*.rs' \
  | grep -v 'crates/microdata/src/dataset.rs' | grep -cv '^[[:space:]]*//' || true)
if [[ "$row_sites" -gt "$ROW_BUDGET" ]]; then
  echo "row-materializer call sites grew: $row_sites > budget $ROW_BUDGET" >&2
  grep -rn '\.rows()\|\.row(' crates/*/src --include='*.rs' \
    | grep -v 'crates/microdata/src/dataset.rs' | grep -v '^[[:space:]]*//' >&2
  exit 1
fi
echo "ok ($row_sites sites, budget $ROW_BUDGET)"

step "cargo fmt --check"
"$CARGO" fmt --all --check

step "cargo clippy (offline, -D warnings)"
"$CARGO" clippy --workspace --all-targets --offline -- -D warnings

if [[ "$QUICK" -eq 0 ]]; then
  step "cargo build --release --offline"
  "$CARGO" build --release --offline
fi

step "cargo test --offline (TDF_THREADS=1)"
TDF_THREADS=1 "$CARGO" test --workspace -q --offline

step "cargo test --offline (TDF_THREADS=4, TDF_CORES=4, TDF_OBS=2)"
# Full observability on, and the measured-core clamp overridden to 4 so
# the persistent executor genuinely engages even on single-core runners
# (results are bit-identical either way — that is the contract under
# test). tests/prop_obs_inert.rs proves TDF_OBS=2 changes no answer.
TDF_THREADS=4 TDF_CORES=4 TDF_OBS=2 "$CARGO" test --workspace -q --offline

step "fault matrix (TDF_FAULTS env path; see tests/fault_matrix.rs)"
# The two runs above are the no-fault column. Here the plan arrives via
# the environment — the path set_plan-based tests bypass. A zero-rate
# plan over every site must leave the whole suite green (inertness,
# end-to-end through the env parser), and live pir / par plans must
# degrade the matrix pipeline to masked faults, refusals and typed
# errors — never wrong answers.
ZERO_RATE="pir.server_drop=4@0,pir.corrupt_word=4@0,par.worker_panic=2@0,querydb.deadline=5@0,smc.corrupt_word=3@0,segment.spill=4@0,segment.reload=4@0,segment.compact=4@0,segment.evict=4@0,disguise.wal_append=4@0,disguise.apply=4@0,disguise.restore=4@0"
PIR_FAULTS="pir.server_drop=0@0.3,pir.corrupt_word=0@0.2"
PAR_FAULTS="par.worker_panic=0@0.05"
SEG_FAULTS="segment.spill=0@0.4,segment.reload=0@0.25,segment.compact=0@0.3,segment.evict=0@0.3"
# Budgets of 2 per disguise site: each WAL append and cell-image apply
# retries up to 3 times, so a 2-fault budget is always absorbed — the
# matrix leg proves crashes degrade to recovery replays, never to a
# half-disguised ledger (tests/fault_matrix.rs holds under any plan;
# unbounded-crash convergence is crash_matrix.rs territory).
DISGUISE_FAULTS="disguise.wal_append=2@0.5,disguise.apply=2@0.4,disguise.restore=2@0.4"
TDF_FAULTS="$ZERO_RATE" TDF_THREADS=4 TDF_CORES=4 "$CARGO" test --workspace -q --offline
for threads in 1 4; do
  TDF_FAULTS="$PIR_FAULTS" TDF_THREADS="$threads" TDF_CORES="$threads" \
    "$CARGO" test -q --offline --test fault_matrix
  TDF_FAULTS="$PAR_FAULTS" TDF_THREADS="$threads" TDF_CORES="$threads" \
    "$CARGO" test -q --offline --test fault_matrix
  # Live spill/reload/compact/evict faults: crashed spills must fail
  # closed (sealed data stays resident and exact), corrupted reloads
  # must heal or surface as typed errors, crashed compactions must
  # leave the old segments queryable and crashed eviction rounds must
  # fail open — never wrong rows, never a dropped segment.
  TDF_FAULTS="$SEG_FAULTS" TDF_THREADS="$threads" TDF_CORES="$threads" \
    "$CARGO" test -q --offline --test fault_matrix
  # Live disguise faults: torn WAL appends and mid-transaction apply
  # crashes must leave every disguise/restore all-or-nothing, with
  # recovery replaying the committed prefix — never wrong cells.
  TDF_FAULTS="$DISGUISE_FAULTS" TDF_THREADS="$threads" TDF_CORES="$threads" \
    "$CARGO" test -q --offline --test fault_matrix
done
echo "ok"

step "out-of-core smoke (TDF_SEGCACHE=65536 forces real spills)"
# A global 64 KiB segment-cache budget is far below every multi-segment
# test table, so sealed segments genuinely stream through the binary
# spill format and back. No answer may change: the segmented properties,
# the streaming query engine and the serve wire transcripts must be
# bit-identical to their unconstrained runs.
TDF_SEGCACHE=65536 "$CARGO" test -q --offline --test prop_segments
TDF_SEGCACHE=65536 "$CARGO" test -q --offline -p tdf-serve
echo "ok"

step "pir-scale smoke (fused batch + hint path, words-scanned budget)"
# Quick shape of the PIR-at-scale bench: n=10^5, q in {1,8}, real fused
# sweeps and hint retrievals with in-bench bit-identity asserts. The
# grep pins the q=8 scan budget to the cost model — 2 servers x 8 lanes
# x ceil(1e5/64) mask words = 25008 — so a kernel that silently starts
# scanning more than the model predicts fails CI even though the timing
# itself is not gated here. The artefact rides along in $ARTIFACTS (the
# workflow uploads it).
TDF_PIR_SCALE_QUICK=1 TDF_PIR_SCALE_SAMPLES=2 TDF_RESULTS_DIR="$ARTIFACTS" \
  "$CARGO" bench --offline -p tdf-bench --bench pir_scale >/dev/null
pir_json="$ARTIFACTS/BENCH_pir_scale.json"
[[ -s "$pir_json" ]] || { echo "missing $pir_json" >&2; exit 1; }
for id in single_q1_n1e5 batch_q8_n1e5 hint_online_n1e5; do
  grep -q "\"id\":\"$id\"" "$pir_json" \
    || { echo "$pir_json lacks entry $id" >&2; exit 1; }
done
grep -q '"words_scanned":25008' "$pir_json" \
  || { echo "$pir_json: q=8 n=1e5 words-scanned budget drifted from 25008" >&2
       exit 1; }
echo "ok"

if [[ "$QUICK" -eq 0 ]]; then
  step "bench smoke run (tiny sample counts; validates BENCH_*.json)"
  # Artefacts land in $ARTIFACTS via TDF_RESULTS_DIR (and would default
  # to the workspace root, never crates/bench/ — bench binaries run with
  # the package directory as cwd; crates/bench/src/harness.rs).
  TDF_BENCH_SAMPLES=3 TDF_BENCH_SAMPLE_MS=2 TDF_BENCH_WARMUP_MS=5 \
    TDF_SERVE_CLIENTS=2 TDF_SERVE_USERS=100 TDF_SERVE_REQS=25 TDF_SERVE_ROWS=300 \
    TDF_PIR_SCALE_QUICK=1 TDF_PIR_SCALE_SAMPLES=2 \
    TDF_DISGUISE_ROWS=200 TDF_DISGUISE_USERS=4 \
    TDF_RESULTS_DIR="$ARTIFACTS" \
    "$CARGO" bench --offline -p tdf-bench >/dev/null
  for suite in substrates ablations experiments par columnar obs faults serve \
               pir_scale segments disguise; do
    json="$ARTIFACTS/BENCH_${suite}.json"
    [[ -s "$json" ]] || { echo "missing $json" >&2; exit 1; }
    for field in median_ns p95_ns p99_ns; do
      grep -q "\"$field\"" "$json" || { echo "$json lacks $field" >&2; exit 1; }
    done
  done
  # The obs suite runs each workload at TDF_OBS=1/2 through bench_with_obs,
  # which embeds the counter snapshot alongside the timings; the serve
  # suite embeds the load generator's run-level aggregates (including the
  # keep-alive ratio) the same way.
  grep -q '"counters"' "$ARTIFACTS/BENCH_obs.json" \
    || { echo "BENCH_obs.json lacks embedded counters" >&2; exit 1; }
  grep -q '"throughput_rps"' "$ARTIFACTS/BENCH_serve.json" \
    || { echo "BENCH_serve.json lacks throughput counters" >&2; exit 1; }
  grep -q '"reqs_per_conn_x100"' "$ARTIFACTS/BENCH_serve.json" \
    || { echo "BENCH_serve.json lacks keep-alive counters" >&2; exit 1; }
  # The segments suite embeds the delta-epoch, compaction and parallel-
  # publication series; keep the artefact so perf PRs can diff
  # republication economics against the run before theirs (the workflow
  # uploads it).
  for id in epoch_full_resident_s20 epoch_delta_s1 epoch_delta_s0 \
            compact_100x40_floor200 publish_par_s20_t1 publish_par_s20_t4; do
    grep -q "\"id\":\"$id\"" "$ARTIFACTS/BENCH_segments.json" \
      || { echo "BENCH_segments.json lacks entry $id" >&2; exit 1; }
  done
  # The disguise suite measures the WAL-durable round trip and the
  # crash-recovery replay, with the per-transaction disguise.* counters
  # embedded.
  for id in txn/roundtrip_n200_u4 recover/replay_4txns_n200; do
    grep -q "\"id\":\"$id\"" "$ARTIFACTS/BENCH_disguise.json" \
      || { echo "BENCH_disguise.json lacks entry $id" >&2; exit 1; }
  done
  grep -q '"disguise.wal_entries"' "$ARTIFACTS/BENCH_disguise.json" \
    || { echo "BENCH_disguise.json lacks disguise.* counters" >&2; exit 1; }
  echo "ok"

  step "serve smoke (scripted session vs golden transcript)"
  # One scripted client session over a real socket: answered queries, a
  # budget refusal, a tracker refusal, a clean BYE and a draining
  # shutdown. The transcript is deterministic in TDF_SEED; any drift
  # means the wire protocol, the admission path or the noise streams
  # changed — regenerate ci/golden/serve_smoke.txt consciously:
  #   TDF_SEED=2007 cargo run --release --offline -q -p tdf-serve \
  #     --bin serve_smoke > ci/golden/serve_smoke.txt
  TDF_SEED=2007 "$CARGO" run --release --offline -q -p tdf-serve --bin serve_smoke \
    > "$ARTIFACTS/serve_smoke.txt"
  diff "$ARTIFACTS/serve_smoke.txt" ci/golden/serve_smoke.txt \
    > "$ARTIFACTS/serve_smoke.diff" \
    || { echo "serve transcript drifted from ci/golden/serve_smoke.txt:" >&2
         cat "$ARTIFACTS/serve_smoke.diff" >&2; exit 1; }
  echo "ok"

  step "disguise smoke (unsubscribe/resubscribe session vs golden transcript)"
  # One scripted session over a real socket: a WAL-durable DISGUISE, the
  # three typed wrong-state refusals, a query riding the same connection
  # and the RESTORE handing the rows back. Deterministic in TDF_SEED;
  # regenerate consciously:
  #   TDF_SEED=2007 cargo run --release --offline -q -p tdf-serve \
  #     --bin disguise_smoke > ci/golden/disguise_smoke.txt
  TDF_SEED=2007 "$CARGO" run --release --offline -q -p tdf-serve --bin disguise_smoke \
    > "$ARTIFACTS/disguise_smoke.txt"
  diff "$ARTIFACTS/disguise_smoke.txt" ci/golden/disguise_smoke.txt \
    > "$ARTIFACTS/disguise_smoke.diff" \
    || { echo "disguise transcript drifted from ci/golden/disguise_smoke.txt:" >&2
         cat "$ARTIFACTS/disguise_smoke.diff" >&2; exit 1; }
  echo "ok"

  step "scaling gate (pir batch economics + t4 median within 1.10x of t1)"
  # The pir_batch leg (hint-path amortized online cost at q=64, n=1e6
  # must stay <= 0.25x a full-scan single query, and fused sweeps must
  # be bit-identical to sequential retrievals) runs on every host. The
  # thread-scaling legs — MDAV/Mondrian parity at 1.10x and the
  # publish_par speedup leg (12 dirty segments, t4 <= 0.6x t1) — skip
  # with a notice on hosts with fewer than 4 measured cores (the core
  # clamp makes the comparison vacuous there); on real multi-core
  # runners a regression past the ratio fails the build.
  "$CARGO" run --release --offline -q -p tdf-bench --bin scaling_gate

  step "deterministic obs snapshot matches the golden file"
  # Counter totals for a fixed F1 sweep are part of the contract: any
  # accounting change must consciously regenerate ci/golden/obs_f1.jsonl
  # (see crates/bench/src/bin/obs_snapshot.rs for the command).
  "$CARGO" run --release --offline -q -p tdf-bench --bin obs_snapshot \
    > "$ARTIFACTS/obs_f1.jsonl"
  diff "$ARTIFACTS/obs_f1.jsonl" ci/golden/obs_f1.jsonl \
    > "$ARTIFACTS/obs_f1.diff" \
    || { echo "obs snapshot drifted from ci/golden/obs_f1.jsonl:" >&2
         cat "$ARTIFACTS/obs_f1.diff" >&2; exit 1; }
  echo "ok"

  step "deterministic fault snapshot matches the golden file"
  # Injection decisions are pure functions of (plan seed, site, draw
  # index), so the fault report for a pinned plan is bit-stable. A drift
  # means injection points moved, fired differently or stopped being
  # counted; regenerate ci/golden/faults_f1.jsonl consciously (see
  # crates/bench/src/bin/fault_snapshot.rs for the command).
  "$CARGO" run --release --offline -q -p tdf-bench --bin fault_snapshot \
    > "$ARTIFACTS/faults_f1.jsonl"
  diff "$ARTIFACTS/faults_f1.jsonl" ci/golden/faults_f1.jsonl \
    > "$ARTIFACTS/faults_f1.diff" \
    || { echo "fault snapshot drifted from ci/golden/faults_f1.jsonl:" >&2
         cat "$ARTIFACTS/faults_f1.diff" >&2; exit 1; }
  echo "ok"
fi

step "all checks passed"
