//! # dbpriv — the three-dimensional database-privacy toolkit
//!
//! Facade crate re-exporting every subsystem of the `tdf` workspace, which
//! reproduces Josep Domingo-Ferrer, *A Three-Dimensional Conceptual
//! Framework for Database Privacy* (SDM@VLDB 2007).
//!
//! The three dimensions, and where to find their technologies:
//!
//! * **Respondent privacy** — [`anonymity`] (k-anonymity & friends) and
//!   [`sdc`] (masking, risk and utility metrics);
//! * **Owner privacy** — [`ppdm`] (non-cryptographic privacy-preserving
//!   data mining) and [`smc`] (cryptographic PPDM / secure multiparty
//!   computation);
//! * **User privacy** — [`pir`] (private information retrieval).
//!
//! The framework itself — dimensions, metrics, technology scoring, and the
//! composition pipelines of §6 of the paper — lives in [`core`].
//!
//! The hot kernels (MDAV, Mondrian, record linkage, multi-server PIR) run
//! on [`par`], the in-tree deterministic parallelism layer (a persistent
//! sharded executor): `TDF_THREADS` requests a count, clamped to the
//! measured cores (`TDF_CORES` overrides detection; `1` forces the serial
//! path) — results are bit-identical at every thread count.
//!
//! Every kernel is instrumented through [`obs`], the zero-dependency
//! observability layer: set `TDF_OBS=1` for counters/gauges/histograms or
//! `TDF_OBS=2` to add spans; instrumentation never changes results.
//!
//! Robustness is exercised through [`faultkit`], the seed-deterministic
//! fault-injection layer: set `TDF_FAULTS` to a plan such as
//! `pir.server_drop=1@0.1,par.worker_panic=3` and the hot paths inject —
//! and survive — server drops, corrupted answers, worker panics and
//! query deadlines; a zero-rate plan is bit-identical to no plan.
//!
//! The interactive statistical database goes online through [`serve`]:
//! a hermetic TCP server (framed binary protocol over `std::net`)
//! wrapping [`querydb`]'s admission path — per-user ε-budgets, tracker
//! detection, deadlines — with typed refusals on the wire and a
//! closed-loop Zipfian load generator.
//!
//! Owner-initiated reversibility lives in [`disguise`]: crash-atomic
//! unsubscribe/resubscribe transactions that re-own a user's rows to
//! deterministic ghost principals and redact their quasi-identifiers,
//! journalled through a checksummed write-ahead log so that a crash at
//! any instruction leaves the ledger all-or-nothing — recovery replays
//! committed transactions and discards torn tails, and
//! restore ∘ disguise is the bit-exact identity.

pub use faultkit;
pub use obs;
pub use par;
pub use tdf_anonymity as anonymity;
pub use tdf_core as core;
pub use tdf_disguise as disguise;
pub use tdf_hippocratic as hippocratic;
pub use tdf_mathkit as mathkit;
pub use tdf_microdata as microdata;
pub use tdf_pir as pir;
pub use tdf_ppdm as ppdm;
pub use tdf_querydb as querydb;
pub use tdf_sdc as sdc;
pub use tdf_serve as serve;
pub use tdf_smc as smc;
