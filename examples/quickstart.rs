//! Quickstart: the three dimensions of database privacy in five minutes.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Walks the paper's own storyline: the Table 1 toy datasets, the §3
//! two-query isolation attack, and the §6 fix that satisfies respondent,
//! owner and user privacy at once.

use dbpriv::anonymity::{is_k_anonymous, k_anonymity_level};
use dbpriv::core::experiments::tradeoff_sweep;
use dbpriv::core::pipeline::{DeploymentConfig, ThreeDimensionalDb};
use dbpriv::microdata::{patients, rng::seeded};
use dbpriv::querydb::control::ControlPolicy;
use dbpriv::querydb::statdb::StatDb;

fn main() {
    // ---- 1. Respondent privacy: k-anonymity on the Table 1 datasets ----
    let d1 = patients::dataset1();
    let d2 = patients::dataset2();
    println!("Dataset 1 k-anonymity level: {:?}", k_anonymity_level(&d1)); // Some(3)
    println!("Dataset 2 k-anonymity level: {:?}", k_anonymity_level(&d2)); // Some(1)
    assert!(is_k_anonymous(&d1, 3) && !is_k_anonymous(&d2, 3));

    // ---- 2. The §3 isolation attack on an unprotected database ----------
    let mut naked = StatDb::new(d2.clone(), ControlPolicy::None);
    let count = naked
        .query_str("SELECT COUNT(*) FROM t WHERE height < 165 AND weight > 105")
        .unwrap();
    let avg = naked
        .query_str("SELECT AVG(blood_pressure) FROM t WHERE height < 165 AND weight > 105")
        .unwrap();
    println!(
        "\nAttack on raw Dataset 2: COUNT = {:?}, AVG(blood_pressure) = {:?}",
        count.point(),
        avg.point()
    );
    println!("  -> Mr./Mrs. X re-identified with systolic pressure 146!");

    // ---- 3. The §6 fix: k-anonymize + PIR -------------------------------
    let mut protected = ThreeDimensionalDb::deploy(
        d2,
        DeploymentConfig {
            k: Some(3),
            pir: true,
        },
    )
    .unwrap();
    let mut rng = seeded(1);
    let q = dbpriv::querydb::parser::parse(
        "SELECT COUNT(*) FROM t WHERE height < 165 AND weight > 105",
    )
    .unwrap();
    let safe_count = protected.private_query(&mut rng, &q).unwrap();
    println!("\nSame attack on the k-anonymized + PIR deployment: COUNT = {safe_count:?}");
    println!(
        "  -> no record isolated, and the servers observed {} plaintext accesses",
        protected.plain_access_log().len()
    );

    // ---- 4. The price: the §6 risk–utility question ---------------------
    let mut rng = seeded(2);
    let points = tradeoff_sweep(true, &[2, 5, 25], 150, &mut rng).unwrap();
    println!("\nk      respondent-score   information-loss   bits/query");
    for p in &points {
        println!(
            "{:<6} {:<18.3} {:<18.3} {}",
            p.k, p.respondent, p.information_loss, p.bits_per_query
        );
    }
    println!("\nSee DESIGN.md and EXPERIMENTS.md for the full reproduction.");
}
