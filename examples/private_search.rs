//! User-privacy scenario: the §1 AOL anecdote. A search-engine-like server
//! holds a public record store; users fetch records. With plaintext access
//! the owner's log profiles every user; with PIR the same workload leaves
//! the owner blind — "in the context of Internet search engines, user
//! privacy is arguably the only privacy that should be cared about" (§4).
//!
//! ```sh
//! cargo run --example private_search
//! ```

use dbpriv::core::metrics::empirical_mask_leakage_bits;
use dbpriv::microdata::rng::seeded;
use dbpriv::microdata::synth::query_log;
use dbpriv::pir::store::Database;
use dbpriv::pir::{linear, trivial};

fn main() {
    // A universe of 64 "documents" and a Zipf-ish query log of 3 users.
    let universe = 64usize;
    let documents: Vec<Vec<u8>> = (0..universe)
        .map(|i| format!("document-{i:04}").into_bytes())
        .collect();
    let db = Database::new(documents);
    let log = query_log(600, universe, 3, 0xA01);

    // --- Plaintext access: the owner reconstructs each user's profile. ---
    let mut profile = vec![vec![0usize; universe]; 3];
    for entry in &log {
        profile[entry.user as usize][entry.query] += 1;
    }
    for (user, counts) in profile.iter().enumerate() {
        let favourite = (0..universe)
            .max_by_key(|&q| counts[q])
            .expect("non-empty universe");
        println!(
            "plaintext log: user {user} queried {} times; favourite document {favourite} ({}x)",
            counts.iter().sum::<usize>(),
            counts[favourite]
        );
    }
    println!("  -> exactly the profiling the 2006 AOL release enabled.\n");

    // --- PIR access: the same workload, served privately. ---------------
    let mut rng = seeded(0xA02);
    let mut views: Vec<(usize, Vec<bool>)> = Vec::with_capacity(log.len());
    let mut total_bits = 0u64;
    for entry in &log {
        let (rec, server_views, cost) = linear::retrieve(&mut rng, &db, 2, entry.query);
        assert_eq!(
            rec,
            db.record(entry.query),
            "PIR must return the right document"
        );
        if let dbpriv::pir::ServerView::Mask(mask) = &server_views[0] {
            views.push((entry.query, mask.to_bools()));
        }
        total_bits += cost.total_bits();
    }
    let leakage = empirical_mask_leakage_bits(&views);
    println!(
        "PIR access: {} retrievals, {} total bits, empirical index leakage {:.4} bits",
        log.len(),
        total_bits,
        leakage
    );
    println!("  -> server 1's view is statistically independent of the queries.");

    // --- The cost of privacy. --------------------------------------------
    let (_, _, trivial_cost) = trivial::retrieve(&db, 0);
    let (_, _, pir_cost) = linear::retrieve(&mut rng, &db, 2, 0);
    println!(
        "\nper-query bits: trivial download {}, 2-server PIR {} (n = {universe})",
        trivial_cost.total_bits(),
        pir_cost.total_bits()
    );
    println!("PIR alone offers no respondent/owner privacy: see `cargo run --example quickstart`.");
}
