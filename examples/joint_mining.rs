//! Owner-privacy scenario (the paper's §1 "co-operative market analysis"):
//! two pharmaceutical companies jointly mine their trial databases with
//! cryptographic PPDM — secure sums, a secure scalar product, a private
//! set intersection of shared trial participants, and a jointly learned
//! decision tree — without either company disclosing a single record.
//!
//! ```sh
//! cargo run --example joint_mining
//! ```

use dbpriv::mathkit::Fp61;
use dbpriv::microdata::rng::seeded;
use dbpriv::smc::id3::{distributed_id3, DataShape, PartySlice};
use dbpriv::smc::intersection::{secure_intersection, Group};
use dbpriv::smc::scalar_product::secure_scalar_product;
use dbpriv::smc::secure_sum::sharing_secure_sum;

fn main() {
    let mut rng = seeded(0x90E);

    // --- 1. Joint aggregate: total hypertensive patients across owners. --
    let counts = [412u64, 277, 391]; // three hospitals' private counts
    let inputs: Vec<Fp61> = counts.iter().map(|&c| Fp61::new(c)).collect();
    let (total, transcript) = sharing_secure_sum(&mut rng, &inputs);
    println!("secure sum of private patient counts: {total}");
    for (p, &c) in counts.iter().enumerate() {
        assert!(
            !transcript.party_saw_value((p + 1) % counts.len(), c),
            "no party may see another's count"
        );
    }
    println!(
        "  transcript: {} messages, none carrying a raw input\n",
        transcript.len()
    );

    // --- 2. Vertically partitioned correlation via scalar product. -------
    // Company A holds dosage deviations, company B holds response
    // deviations for the same (aligned) patients; x·y is the covariance
    // numerator neither could compute alone.
    let dosage: Vec<Fp61> = [3i64, -1, 4, 1, -5, 9, -2, 6]
        .iter()
        .map(|&v| Fp61::from_i64(v))
        .collect();
    let response: Vec<Fp61> = [2i64, 7, -1, 8, 2, -8, 1, 8]
        .iter()
        .map(|&v| Fp61::from_i64(v))
        .collect();
    let (dot, t2) = secure_scalar_product(&mut rng, &dosage, &response);
    println!(
        "secure scalar product (covariance numerator): {}",
        dot.to_i64()
    );
    println!(
        "  commodity server received {} messages (none)\n",
        t2.view_of(2).len()
    );

    // --- 3. Which patients are enrolled in both trials? ------------------
    let group = Group::generate(&mut rng, 40);
    let trial_a = [1001u64, 1002, 1003, 1004, 1005];
    let trial_b = [1003u64, 1005, 1007, 1009];
    let mut overlap = secure_intersection(&mut rng, &group, &trial_a, &trial_b);
    overlap.sort_unstable();
    println!("private set intersection of enrolments: {overlap:?}");
    println!("  (neither company learned the other's non-shared patients)\n");

    // --- 4. A jointly learned classifier over horizontal partitions. -----
    // Attributes: age-band (0-2), overweight (0/1); class: responded (0/1).
    let mut a = PartySlice::default();
    let mut b = PartySlice::default();
    for i in 0..60usize {
        let age_band = i % 3;
        let overweight = usize::from(i % 4 == 0);
        let responded = usize::from(age_band < 2 && overweight == 0);
        let slice = if i % 2 == 0 { &mut a } else { &mut b };
        slice.rows.push(vec![age_band, overweight]);
        slice.labels.push(responded);
    }
    let shape = DataShape {
        attribute_cardinalities: vec![3, 2],
        num_classes: 2,
    };
    let result = distributed_id3(&mut rng, &[a.clone(), b.clone()], &shape, 3);
    let mut correct = 0usize;
    let mut total_rows = 0usize;
    for slice in [&a, &b] {
        for (row, &label) in slice.rows.iter().zip(&slice.labels) {
            total_rows += 1;
            if result.tree.classify(row) == label {
                correct += 1;
            }
        }
    }
    println!(
        "distributed ID3: tree of {} nodes, training accuracy {}/{}, {} secure sums, zero records exchanged",
        result.tree.size(),
        correct,
        total_rows,
        result.secure_sums
    );
    println!("\nAs §4 of the paper notes: the parties all know WHAT was computed —");
    println!("crypto PPDM gives owner privacy, never user privacy.");
}
