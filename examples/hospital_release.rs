//! Hospital scenario (the paper's §1 healthcare motivation): a hippocratic
//! database enforcing purposes and consent, producing a research release
//! that is simultaneously k-anonymous (respondent privacy) and noise-masked
//! (owner privacy), with risk and utility measured.
//!
//! ```sh
//! cargo run --example hospital_release
//! ```

use dbpriv::core::metrics::{owner_score, respondent_score};
use dbpriv::hippocratic::{Consent, HippocraticDb, PrivacyPolicy, Purpose};
use dbpriv::microdata::rng::seeded;
use dbpriv::microdata::synth::{patients, PatientConfig};
use dbpriv::sdc::utility::utility_report;

fn main() {
    // A clinical population: heights/weights are key attributes, systolic
    // blood pressure and the AIDS flag are confidential.
    let data = patients(&PatientConfig {
        n: 500,
        seed: 7,
        ..Default::default()
    });
    let n = data.num_rows();

    // Policy: treatment sees everything for 10 years; billing sees only
    // blood pressure for 1 year; research is allowed on the full schema
    // for 5 years; marketing gets nothing.
    let policy = PrivacyPolicy::new()
        .allow(
            Purpose::Treatment,
            &["height", "weight", "blood_pressure", "aids"],
            3650,
        )
        .allow(Purpose::Billing, &["blood_pressure"], 365)
        .allow(
            Purpose::Research,
            &["height", "weight", "blood_pressure", "aids"],
            1825,
        );

    // 10% of patients refuse research use of their records.
    let consent: Vec<Consent> = (0..n)
        .map(|i| {
            if i % 10 == 0 {
                Consent::to(&[Purpose::Treatment, Purpose::Billing])
            } else {
                Consent::all()
            }
        })
        .collect();
    let mut db = HippocraticDb::new(data.clone(), policy, consent, vec![0; n]).unwrap();

    // Purpose-bound access: billing cannot see AIDS flags.
    let billing_view = db
        .access(Purpose::Billing, &["blood_pressure", "aids"])
        .unwrap();
    let suppressed = (0..billing_view.num_rows())
        .filter(|&i| billing_view.value(i, 1).is_missing())
        .count();
    println!(
        "billing view: {} records, {} AIDS cells suppressed",
        billing_view.num_rows(),
        suppressed
    );

    // The external research release: k-anonymized + noise-masked.
    let mut rng = seeded(99);
    let released = db.research_release(5, 0.4, &mut rng).unwrap();
    println!(
        "research release: {} of {} records (consent honored), 5-anonymous: {}",
        released.num_rows(),
        n,
        dbpriv::anonymity::is_k_anonymous(&released, 5)
    );

    // Measure what the paper's first two dimensions ask for. The release
    // covers consenting patients only; align on that subset for scoring.
    let consenting = {
        let mut subset = dbpriv::microdata::Dataset::new(data.schema().clone());
        for i in (0..n).filter(|i| i % 10 != 0) {
            subset.push_row(data.row(i).to_vec()).unwrap();
        }
        subset
    };
    let numeric = consenting.schema().numeric_indices();
    let resp = respondent_score(&consenting, &released).unwrap();
    let own = owner_score(&consenting, &released, &numeric, 0.1).unwrap();
    let utility = utility_report(&consenting, &released, &numeric).unwrap();
    println!("respondent-privacy score: {resp:.3}");
    println!("owner-privacy score:      {own:.3}");
    println!(
        "utility: IL1s {:.3}, max mean drift {:.4}, max correlation drift {:.3}",
        utility.il1s, utility.max_mean_drift, utility.max_correlation_drift
    );

    // The compliance story: every access is journaled.
    println!("\naudit trail:");
    for rec in db.audit_trail() {
        println!(
            "  {:?} requested {:?}: served = {}, records = {}",
            rec.purpose, rec.attributes, rec.served, rec.records_disclosed
        );
    }
}
