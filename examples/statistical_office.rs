//! Statistical-office scenario (the paper's §1 "official statistics"
//! context): a census-style microdata file with *categorical*
//! quasi-identifiers is protected by global recoding over generalization
//! hierarchies plus invariant PRAM, and the release is assessed with the
//! mixed-type record-linkage metric.
//!
//! ```sh
//! cargo run --example statistical_office
//! ```

use dbpriv::anonymity::hierarchy::{Hierarchy, TreeHierarchy};
use dbpriv::anonymity::recoding::minimal_recoding;
use dbpriv::anonymity::{is_k_anonymous, k_anonymity_level};
use dbpriv::microdata::rng::seeded;
use dbpriv::microdata::synth::{census, EDUCATION_LEVELS};
use dbpriv::sdc::pram::invariant_pram;
use dbpriv::sdc::risk::{record_linkage_rate_mixed, uniqueness_rate};

fn main() {
    // A census sample: age (integer QI), zip (nominal QI), education
    // (ordinal QI), income + disease (confidential).
    let data = census(400, 0x0FF1CE);
    println!(
        "census sample: {} records, k-anonymity level {:?}, {:.0}% sample-unique",
        data.num_rows(),
        k_anonymity_level(&data),
        uniqueness_rate(&data) * 100.0
    );

    // Generalization hierarchies: 5-year age bands doubling per level; zip
    // codes truncated digit by digit (tree); education collapsing to
    // degree/no-degree.
    let zips: Vec<String> = (0..20).map(|i| format!("43{:03}", i * 7 % 100)).collect();
    let zip_entries: Vec<(String, [String; 2])> = zips
        .iter()
        .map(|z| (z.clone(), [format!("{}**", &z[..3]), "4****".to_owned()]))
        .collect();
    let zip_hierarchy = {
        let entries: Vec<(&str, Vec<&str>)> = zip_entries
            .iter()
            .map(|(z, a)| (z.as_str(), vec![a[0].as_str(), a[1].as_str()]))
            .collect();
        let slices: Vec<(&str, &[&str])> =
            entries.iter().map(|(z, a)| (*z, a.as_slice())).collect();
        Hierarchy::Tree(TreeHierarchy::new(&slices))
    };
    let edu_entries: Vec<(&str, Vec<&str>)> = EDUCATION_LEVELS
        .iter()
        .map(|&e| {
            let coarse = if e == "primary" || e == "secondary" {
                "school"
            } else {
                "degree"
            };
            (e, vec![coarse])
        })
        .collect();
    let edu_slices: Vec<(&str, &[&str])> = edu_entries
        .iter()
        .map(|(e, a)| (*e, a.as_slice()))
        .collect();
    let hierarchies = vec![
        Hierarchy::Interval {
            base_width: 5.0,
            origin: 0.0,
            levels: 3,
        }, // age
        zip_hierarchy,                                    // zip
        Hierarchy::Tree(TreeHierarchy::new(&edu_slices)), // education
    ];

    // Minimal full-domain recoding to 4-anonymity (up to 8 outliers
    // suppressed).
    let result =
        minimal_recoding(&data, &hierarchies, 4, 8).expect("full suppression always succeeds");
    println!(
        "recoding levels (age, zip, education): {:?}; {} records suppressed",
        result.levels, result.suppressed_records
    );
    assert!(is_k_anonymous(&result.data, 4));
    println!("release is 4-anonymous: true");

    // Extra protection for the sensitive disease column: invariant PRAM
    // keeps the published disease frequencies unbiased.
    let disease_col = result.data.schema().index_of("disease").unwrap();
    let released = invariant_pram(&result.data, disease_col, 0.3, &mut seeded(1)).unwrap();

    // Risk assessment with the mixed-type linkage metric. The intruder's
    // external file holds the *original* categories, generalized with the
    // same hierarchies the office published (worst-case assumption).
    let external_full = dbpriv::anonymity::apply_recoding(&data, &hierarchies, &result.levels);
    // Align rows: restrict the intruder file to the released respondents.
    let mut external = dbpriv::microdata::Dataset::new(external_full.schema().clone());
    for &i in &result.kept_indices {
        external.push_row(external_full.row(i).to_vec()).unwrap();
    }
    let qi = released.schema().quasi_identifier_indices();
    let rate = record_linkage_rate_mixed(&external, &released, &qi).unwrap();
    println!("worst-case mixed linkage against the release: {rate:.3}");
    assert!(rate <= 0.25 + 1e-9, "4-anonymity bounds linkage by 1/4");
    println!("\nThe same data served interactively would need query control —");
    println!("see `cargo run -p tdf-bench --bin fig_tracker` for why that fails users.");
}
